"""Tests for the vectorized columnar execution engine.

The engine must be *invisible* in results: every kernel (scan, selection
including the index recheck path, projection, hash join, distinct, grouped
aggregation) and every batch-compiled expression produces bit-identical
relations to the row-at-a-time reference, and IMP systems with
``IMPConfig.vectorize`` on and off capture identical sketches.  The
Hypothesis differential tests run generated query/update workloads over
mixed-type columns with NULLs; the unit tests pin down the batch
representation, the three-valued-logic kernels, the fallback boundary around
TopK and the index-ranking selection.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.imp.engine import IMPConfig
from repro.imp.middleware import IMPSystem
from repro.relational.algebra import OrderItem, Selection, TableScan, TopK
from repro.relational.columnar import ColumnBatch
from repro.relational.evaluator import Evaluator
from repro.relational.expressions import (
    BinaryOp,
    ColumnRef,
    Comparison,
    FunctionCall,
    IsNull,
    Literal,
    LogicalOp,
    Not,
    clear_compile_cache,
    compile_batch_expression,
    compile_expression,
)
from repro.relational.schema import Relation, Schema
from repro.storage.database import Database

STRINGS = ["ash", "birch", "cedar", "oak", None]


def make_mixed_db(num_rows: int = 160, seed: int = 5) -> Database:
    """Two tables with mixed-type columns and NULLs in several of them."""
    rng = random.Random(seed)
    database = Database()
    database.create_table("m", ["id", "a", "b", "s"], primary_key="id")
    database.insert(
        "m",
        [
            (
                i,
                rng.randrange(12),
                None if rng.random() < 0.15 else rng.randrange(100),
                rng.choice(STRINGS),
            )
            for i in range(num_rows)
        ],
    )
    database.create_table("o", ["oid", "g", "w"], primary_key="oid")
    database.insert(
        "o",
        [
            (i, None if rng.random() < 0.1 else i % 12, rng.uniform(0, 10))
            for i in range(num_rows // 2)
        ],
    )
    return database


# -- the columnar representation -------------------------------------------------------


class TestColumnBatch:
    def test_relation_roundtrip(self):
        schema = Schema(["x", "y"])
        relation = Relation(schema, {(1, "a"): 2, (None, "b"): 1, (3, None): 4})
        batch = ColumnBatch.from_relation(relation)
        assert len(batch) == 3
        assert batch.consolidated
        assert batch.to_relation() == relation

    def test_duplicate_entries_merge_on_conversion(self):
        schema = Schema(["x"])
        batch = ColumnBatch(schema, [[1, 2, 1]], [2, 1, 3], consolidated=False)
        relation = batch.to_relation()
        assert relation.multiplicity((1,)) == 5
        assert relation.multiplicity((2,)) == 1

    def test_consolidate_keeps_first_occurrence_order(self):
        schema = Schema(["x"])
        batch = ColumnBatch(schema, [[7, 3, 7, 3, 9]], [1, 1, 1, 1, 1])
        merged = batch.consolidate()
        assert merged.columns[0] == [7, 3, 9]
        assert merged.multiplicities == [2, 2, 1]
        assert merged.consolidated

    def test_relabel_shares_columns(self):
        schema = Schema(["x", "y"])
        batch = ColumnBatch(schema, [[1], [2]], [1], consolidated=True)
        relabeled = batch.relabel(schema.qualify("t"))
        assert relabeled.columns[0] is batch.columns[0]
        assert list(relabeled.schema) == ["t.x", "t.y"]

    def test_empty_batch(self):
        schema = Schema(["x", "y"])
        batch = ColumnBatch.empty(schema)
        assert len(batch) == 0
        assert batch.to_relation() == Relation(schema)


# -- batch-compiled expressions --------------------------------------------------------


def assert_batch_matches_rows(expression, schema, rows):
    """The batch kernel's value column equals per-row compiled evaluation."""
    row_fn = compile_expression(expression, schema)
    batch = ColumnBatch.from_items(schema, [(row, 1) for row in rows])
    batch_fn = compile_batch_expression(expression, schema)
    values = batch_fn(batch.columns, len(batch))
    assert values == [row_fn(row) for row in rows], expression.canonical()


class TestBatchCompiledExpressions:
    SCHEMA = Schema(["x", "y", "s"])
    ROWS = [
        (1, 10, "ash"),
        (None, 5, "oak"),
        (3, None, None),
        (0, 0, "birch"),
        (-2, 7, "ash"),
    ]

    @pytest.mark.parametrize(
        "expression",
        [
            ColumnRef("x"),
            Literal(42),
            Literal(None),
            Comparison("<", ColumnRef("x"), Literal(2)),
            Comparison("=", ColumnRef("s"), Literal("ash")),
            Comparison(">=", ColumnRef("x"), ColumnRef("y")),
            Comparison("<", ColumnRef("x"), Literal(None)),
            BinaryOp("+", ColumnRef("x"), ColumnRef("y")),
            BinaryOp("/", ColumnRef("y"), ColumnRef("x")),  # division by zero -> NULL
            IsNull(ColumnRef("y")),
            IsNull(ColumnRef("y"), negated=True),
            Not(Comparison("<", ColumnRef("x"), Literal(2))),
            LogicalOp(
                "AND",
                [
                    Comparison("<", ColumnRef("x"), Literal(5)),
                    Comparison(">", ColumnRef("y"), Literal(3)),
                ],
            ),
            LogicalOp(
                "OR",
                [
                    Comparison("<", ColumnRef("y"), Literal(6)),
                    IsNull(ColumnRef("s")),
                ],
            ),
            FunctionCall("abs", [ColumnRef("x")]),
            FunctionCall("lower", [FunctionCall("upper", [ColumnRef("s")])]),
            FunctionCall("coalesce", [ColumnRef("x"), ColumnRef("y"), Literal(-1)]),
        ],
    )
    def test_batch_equals_row_evaluation(self, expression):
        assert_batch_matches_rows(expression, self.SCHEMA, self.ROWS)

    def test_three_valued_logic_tables(self):
        # AND/OR over every combination of True/False/NULL comparisons.
        schema = Schema(["p", "q"])
        rows = [(p, q) for p in (0, 1, None) for q in (0, 1, None)]
        p_true = Comparison("=", ColumnRef("p"), Literal(1))
        q_true = Comparison("=", ColumnRef("q"), Literal(1))
        assert_batch_matches_rows(LogicalOp("AND", [p_true, q_true]), schema, rows)
        assert_batch_matches_rows(LogicalOp("OR", [p_true, q_true]), schema, rows)
        assert_batch_matches_rows(Not(LogicalOp("AND", [p_true, q_true])), schema, rows)

    def test_constant_folding_produces_whole_column(self):
        fn = compile_batch_expression(
            BinaryOp("*", Literal(3), Literal(4)), Schema(["x"])
        )
        assert fn((["a", "b"],), 2) == [12, 12]

    def test_row_and_batch_modes_share_the_cache_without_clashing(self):
        clear_compile_cache()
        schema = Schema(["x"])
        expression = Comparison("<", ColumnRef("x"), Literal(5))
        row_fn = compile_expression(expression, schema)
        batch_fn = compile_batch_expression(expression, schema)
        assert row_fn is compile_expression(expression, schema)
        assert batch_fn is compile_batch_expression(expression, schema)
        assert row_fn is not batch_fn

    def test_aggregate_call_still_raises_per_element(self):
        fn = compile_batch_expression(
            FunctionCall("sum", [ColumnRef("x")]), Schema(["x"])
        )
        with pytest.raises(Exception):
            fn(([1, 2],), 2)


# -- non-strict predicates and the selection kernel ------------------------------------


class TestSelectionSemantics:
    def test_non_boolean_predicate_matches_row_engine(self):
        # A bare column as predicate: the row engine keeps rows only when the
        # value is literally True; truthy ints must not pass either way.
        database = Database()
        database.create_table("t", ["id", "flag"], primary_key="id")
        database.insert("t", [(1, True), (2, 1), (3, 0), (4, False), (5, None)])
        plan = Selection(TableScan("t"), ColumnRef("flag"))
        vectorized = database.query(plan, optimize_plans=False, vectorize=True)
        row = database.query(plan, optimize_plans=False, vectorize=False)
        assert vectorized == row
        assert vectorized.to_set() == {(1, True)}

    def test_constant_predicates(self):
        database = make_mixed_db(20)
        for value, expected in ((True, 20), (False, 0), (None, 0), (1, 0)):
            plan = Selection(TableScan("m"), Literal(value))
            vectorized = database.query(plan, optimize_plans=False, vectorize=True)
            row = database.query(plan, optimize_plans=False, vectorize=False)
            assert vectorized == row
            assert len(vectorized) == expected


# -- fallback boundary (row-based TopK) ------------------------------------------------


class TestFallbackBoundary:
    def test_vectorized_subtree_under_row_topk(self):
        database = make_mixed_db()
        sql = "SELECT id, b FROM m WHERE b < 80 ORDER BY b, id LIMIT 7"
        assert database.query(sql, vectorize=True) == database.query(sql, vectorize=False)

    def test_row_topk_under_vectorized_selection(self):
        database = make_mixed_db()
        topk = TopK(
            TableScan("m"),
            k=25,
            order_by=[OrderItem(ColumnRef("id"))],
        )
        plan = Selection(topk, Comparison("<", ColumnRef("b"), Literal(50)))
        vectorized = database.query(plan, optimize_plans=False, vectorize=True)
        row = database.query(plan, optimize_plans=False, vectorize=False)
        assert vectorized == row
        assert len(vectorized) > 0

    def test_scan_counts_match_between_engines(self):
        # The vectorized engine must not change the I/O instrumentation:
        # column_batch counts like relation, index scans like index scans.
        database = make_mixed_db()
        database.create_index("m", "b")
        queries = [
            "SELECT a, b FROM m WHERE b BETWEEN 10 AND 20",
            "SELECT m.id, o.w FROM m JOIN o ON (a = g)",
            "SELECT a, count(*) AS n FROM m GROUP BY a",
        ]
        for sql in queries:
            counters = []
            for vectorize in (True, False):
                before = (database.full_scan_count, database.index_scan_count)
                database.query(sql, vectorize=vectorize)
                after = (database.full_scan_count, database.index_scan_count)
                counters.append((after[0] - before[0], after[1] - before[1]))
            assert counters[0] == counters[1], sql


# -- storage integration ---------------------------------------------------------------


class TestColumnCache:
    def test_repeated_scans_share_the_cached_batch(self):
        database = make_mixed_db(30)
        first = database.column_batch("m")
        assert database.column_batch("m") is first

    def test_commit_invalidates_the_cache(self):
        database = make_mixed_db(30)
        first = database.column_batch("m")
        database.insert("m", [(10_000, 1, 2, "oak")])
        second = database.column_batch("m")
        assert second is not first
        assert len(second) == len(first) + 1

    def test_cached_batch_survives_query_side_mutations(self):
        database = make_mixed_db(30)
        result = database.query("SELECT * FROM m", vectorize=True)
        some_row = next(iter(result.distinct_rows()))
        result.remove(some_row, 1)
        result.add((999_999, 0, 0, "x"), 5)
        again = database.query("SELECT * FROM m", vectorize=True)
        assert again.multiplicity((999_999, 0, 0, "x")) == 0
        assert again.multiplicity(some_row) > 0


# -- index ranking (satellite) ---------------------------------------------------------


class TestIndexRanking:
    def test_most_selective_index_wins(self, monkeypatch):
        # Attribute "b" sorts before "z_sel" in indexed_attributes(), so the
        # old first-selective-candidate rule would always pick "b"; the
        # ranking must pick "z_sel", whose bound covers ~1% of its domain
        # against ~80% for "b".
        rng = random.Random(3)
        database = Database()
        database.create_table("t", ["id", "b", "z_sel"], primary_key="id")
        database.insert(
            "t",
            [(i, rng.randrange(100), rng.randrange(10_000)) for i in range(2000)],
        )
        database.create_index("t", "b")
        database.create_index("t", "z_sel")
        used = []
        original = Database.index_scan

        def recording(self, table, attribute, intervals):
            used.append(attribute)
            return original(self, table, attribute, intervals)

        monkeypatch.setattr(Database, "index_scan", recording)
        sql = (
            "SELECT id FROM t WHERE b BETWEEN 0 AND 80 "
            "AND z_sel BETWEEN 100 AND 200"
        )
        for vectorize in (True, False):
            used.clear()
            database.query(sql, optimize_plans=True, vectorize=vectorize)
            assert used == ["z_sel"], used

    def test_single_candidate_still_served(self):
        database = make_mixed_db()
        database.create_index("m", "b")
        before = database.index_scan_count
        result = database.query("SELECT id FROM m WHERE b BETWEEN 5 AND 9")
        assert database.index_scan_count == before + 1
        assert result == database.query(
            "SELECT id FROM m WHERE b BETWEEN 5 AND 9", optimize_plans=False, vectorize=False
        )


# -- Hypothesis differential suites ----------------------------------------------------

QUERY_TEMPLATES = [
    "SELECT id, a, b FROM m WHERE b BETWEEN {low} AND {high}",
    "SELECT a, b, s FROM m WHERE b < {high} OR s = 'ash'",
    "SELECT DISTINCT s FROM m WHERE b > {low}",
    "SELECT a, count(*) AS n, sum(b) AS sb, min(s) AS ms FROM m GROUP BY a",
    "SELECT a, avg(b) AS ab FROM m WHERE b IS NOT NULL GROUP BY a HAVING avg(b) > {low}",
    "SELECT m.id, o.w FROM m JOIN o ON (a = g) WHERE m.b < {high}",
    "SELECT id, b * 2 AS bb FROM m WHERE s IS NULL",
    "SELECT id, b FROM m WHERE b < {high} ORDER BY b, id LIMIT 5",
    "SELECT count(*) AS n FROM m WHERE b BETWEEN {low} AND {high}",
    "SELECT abs(b) AS ab, lower(s) AS ls FROM m WHERE b > {low}",
]


@st.composite
def workload(draw):
    steps = []
    next_id = [50_000]
    for _ in range(draw(st.integers(1, 4))):
        template = draw(st.sampled_from(QUERY_TEMPLATES))
        low = draw(st.integers(0, 60))
        high = low + draw(st.integers(0, 80))
        steps.append(("query", template.format(low=low, high=high)))
        kind = draw(st.sampled_from(["insert", "delete", "none"]))
        if kind == "insert":
            rows = []
            for _ in range(draw(st.integers(1, 5))):
                rows.append(
                    (
                        next_id[0],
                        draw(st.integers(0, 11)),
                        draw(st.one_of(st.none(), st.integers(0, 99))),
                        draw(st.sampled_from(STRINGS)),
                    )
                )
                next_id[0] += 1
            steps.append(("insert", rows))
        elif kind == "delete":
            steps.append(("delete", draw(st.integers(0, 40))))
    return steps


class TestDifferential:
    @settings(max_examples=30, deadline=None)
    @given(workload())
    def test_vectorized_is_bit_identical_to_row_engine(self, steps):
        database = make_mixed_db(num_rows=120, seed=11)
        database.create_index("m", "b")
        for kind, payload in steps:
            if kind == "query":
                for optimize in (False, True):
                    vectorized = database.query(
                        payload, optimize_plans=optimize, vectorize=True
                    )
                    row = database.query(
                        payload, optimize_plans=optimize, vectorize=False
                    )
                    assert vectorized == row, (payload, optimize)
            elif kind == "insert":
                database.insert("m", payload)
            else:
                database.execute(f"DELETE FROM m WHERE b < {payload}")

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**20), st.integers(2, 5))
    def test_imp_sketches_identical_under_vectorize_toggle(self, seed, ops):
        rng = random.Random(seed)
        queries = [
            "SELECT a, avg(b) AS ab FROM r GROUP BY a HAVING avg(c) < {0}".format(
                150 + rng.randrange(100)
            ),
            "SELECT a, sum(c) AS sc FROM r WHERE b > {0} GROUP BY a".format(
                rng.randrange(40)
            ),
        ]
        data_rng = random.Random(29)
        rows = [
            (i, data_rng.randrange(15), data_rng.randrange(100), data_rng.randrange(300))
            for i in range(150)
        ]
        systems = []
        for vectorize in (True, False):
            database = Database()
            database.create_table("r", ["id", "a", "b", "c"], primary_key="id")
            database.insert("r", rows)
            systems.append(
                IMPSystem(
                    database,
                    config=IMPConfig(vectorize=vectorize),
                    num_fragments=16,
                )
            )
        next_id = 20_000
        for step in range(ops):
            sql = queries[step % len(queries)]
            results = [system.run_query(sql) for system in systems]
            assert results[0] == results[1], sql
            inserts = [
                (next_id + i, rng.randrange(15), rng.randrange(100), rng.randrange(300))
                for i in range(rng.randrange(1, 4))
            ]
            next_id += len(inserts)
            for system in systems:
                system.apply_update("r", inserts=inserts)
        stores = [system.store for system in systems]
        assert len(stores[0]) == len(stores[1]) > 0
        for entry in list(stores[0].entries()):
            twin = stores[1].get(entry.template)
            assert twin is not None
            assert set(entry.sketch.fragment_ids()) == set(twin.sketch.fragment_ids())


# -- evaluator without the database provider -------------------------------------------


class _PlainProvider:
    """A RelationProvider without column_batch/index hooks (protocol floor)."""

    def __init__(self):
        self.schema = Schema(["x", "y"])
        self.data = Relation(self.schema, {(1, 2): 1, (3, 4): 2, (None, 6): 1})

    def relation(self, table):
        return self.data.copy()

    def schema_of(self, table):
        return self.schema


def test_vectorized_evaluator_works_without_column_batch_provider():
    provider = _PlainProvider()
    plan = Selection(TableScan("t"), Comparison(">", ColumnRef("x"), Literal(1)))
    vectorized = Evaluator(provider, vectorize=True).evaluate(plan)
    row = Evaluator(provider, vectorize=False).evaluate(plan)
    assert vectorized == row
    assert vectorized.to_set() == {(3, 4)}
