"""Tests for the incremental engine: operator semantics and Theorem 6.1.

The central invariant (fragment correctness / Theorem 6.1) is checked by
comparing the incrementally maintained sketch against a freshly captured one
after every update: the maintained sketch must be a superset of the accurate
sketch, and for the supported operators it is in fact exactly equal.
"""

import random

import pytest

from repro.core.errors import PlanError
from repro.imp.engine import IMPConfig, IncrementalEngine
from repro.sketch.capture import capture_sketch
from repro.sketch.ranges import DatabasePartition, RangePartition
from repro.sketch.selection import build_database_partition
from repro.storage.database import Database
from tests.conftest import Q_TOP, S8


def maintained_matches_truth(engine, maintainer_sketch, plan, partition, database):
    """Assert the over-approximation invariant and return whether it is exact."""
    truth = capture_sketch(plan, partition, database)
    maintained = set(maintainer_sketch.fragment_ids())
    accurate = set(truth.fragment_ids())
    assert maintained >= accurate, "maintained sketch misses provenance fragments"
    return maintained == accurate


class TestEngineBasics:
    def test_initialize_captures_same_sketch_as_capture_query(
        self, sales_db, sales_partition
    ):
        plan = sales_db.plan(Q_TOP)
        engine = IncrementalEngine(plan, sales_partition, sales_db)
        sketch = engine.initialize()
        reference = capture_sketch(plan, sales_partition, sales_db)
        assert set(sketch.fragment_ids()) == set(reference.fragment_ids())
        assert engine.is_initialized

    def test_maintain_before_initialize_rejected(self, sales_db, sales_partition):
        engine = IncrementalEngine(sales_db.plan(Q_TOP), sales_partition, sales_db)
        with pytest.raises(PlanError):
            engine.maintain(sales_db.database_delta_since(["sales"], 0))

    def test_paper_example_insertion_adds_rho2(self, sales_db, sales_partition):
        plan = sales_db.plan(Q_TOP)
        engine = IncrementalEngine(plan, sales_partition, sales_db)
        engine.initialize()
        version = sales_db.version
        sales_db.insert("sales", [S8])
        outcome = engine.maintain(sales_db.database_delta_since(["sales"], version))
        assert outcome.sketch_delta.added == frozenset({1})
        assert not outcome.sketch_delta.removed

    def test_deletion_removes_unjustified_fragment(self, sales_db, sales_partition):
        plan = sales_db.plan(Q_TOP)
        engine = IncrementalEngine(plan, sales_partition, sales_db)
        engine.initialize()
        version = sales_db.version
        # Deleting the MacBook Pro drops Apple below the HAVING threshold.
        sales_db.delete_rows("sales", [(4, "Apple", "MacBook Pro 14-inch", 3875, 1)])
        outcome = engine.maintain(sales_db.database_delta_since(["sales"], version))
        assert outcome.sketch_delta.removed == frozenset({2, 3})

    def test_empty_delta_produces_empty_sketch_delta(self, sales_db, sales_partition):
        plan = sales_db.plan(Q_TOP)
        engine = IncrementalEngine(plan, sales_partition, sales_db)
        engine.initialize()
        outcome = engine.maintain(sales_db.database_delta_since(["sales"], sales_db.version))
        assert not outcome.sketch_delta

    def test_explain_lists_operators(self, sales_db, sales_partition):
        engine = IncrementalEngine(sales_db.plan(Q_TOP), sales_partition, sales_db)
        text = engine.explain()
        assert "MergeOperator" in text
        assert "IncAggregation" in text
        assert "IncTableAccess(sales)" in text

    def test_reset_discards_state(self, sales_db, sales_partition):
        engine = IncrementalEngine(sales_db.plan(Q_TOP), sales_partition, sales_db)
        engine.initialize()
        engine.reset()
        assert not engine.is_initialized

    def test_unsupported_plan_node_raises(self, sales_db, sales_partition):
        class Strange:
            pass

        from repro.relational.algebra import PlanNode

        class StrangeNode(PlanNode):
            def children(self):
                return ()

            def output_schema(self, catalog):
                raise NotImplementedError

            def describe(self):
                return "Strange"

        with pytest.raises(PlanError):
            IncrementalEngine(StrangeNode(), sales_partition, sales_db)


def run_random_maintenance(
    database: Database,
    sql: str,
    num_fragments: int,
    steps: int,
    rows: list,
    make_row,
    config: IMPConfig | None = None,
    seed: int = 5,
):
    """Drive an engine through random insert/delete batches and check Theorem 6.1."""
    rng = random.Random(seed)
    plan = database.plan(sql)
    partition = build_database_partition(database, plan, num_fragments)
    engine = IncrementalEngine(plan, partition, database, config)
    sketch = engine.initialize()
    exact_steps = 0
    next_id = 100_000
    for _ in range(steps):
        version = database.version
        inserts = [make_row(rng, next_id + i) for i in range(rng.randrange(1, 12))]
        next_id += len(inserts)
        deletes = rng.sample(rows, min(len(rows), rng.randrange(0, 6)))
        for victim in deletes:
            rows.remove(victim)
        rows.extend(inserts)
        if inserts:
            database.insert("r", inserts)
        if deletes:
            database.delete_rows("r", deletes)
        outcome = engine.maintain(database.database_delta_since(plan.referenced_tables(), version))
        assert not outcome.needs_recapture
        sketch = sketch.apply_delta(outcome.sketch_delta)
        if maintained_matches_truth(engine, sketch, plan, partition, database):
            exact_steps += 1
    return exact_steps, steps


class TestTheorem61:
    """Randomised checks of the correctness theorem per query class."""

    def _synthetic(self, seed=3, rows=800, groups=25):
        rng = random.Random(seed)
        database = Database()
        database.create_table("r", ["id", "a", "b", "c"], primary_key="id")
        data = [
            (i, rng.randrange(groups), rng.randrange(500), rng.randrange(1000))
            for i in range(rows)
        ]
        database.insert("r", data)
        return database, data

    @staticmethod
    def _make_row(rng, row_id):
        return (row_id, rng.randrange(25), rng.randrange(500), rng.randrange(1000))

    def test_group_by_having_avg(self):
        database, data = self._synthetic()
        exact, steps = run_random_maintenance(
            database,
            "SELECT a, avg(b) AS ab FROM r GROUP BY a HAVING avg(c) < 600",
            12,
            8,
            data,
            self._make_row,
        )
        assert exact == steps

    def test_sum_count_multiple_aggregates(self):
        database, data = self._synthetic(seed=11)
        exact, steps = run_random_maintenance(
            database,
            "SELECT a, sum(b) AS sb, count(*) AS n FROM r GROUP BY a "
            "HAVING sum(b) > 100 AND count(*) > 2",
            10,
            8,
            data,
            self._make_row,
        )
        assert exact == steps

    def test_min_max_aggregates(self):
        database, data = self._synthetic(seed=17)
        exact, steps = run_random_maintenance(
            database,
            "SELECT a, min(b) AS lo, max(c) AS hi FROM r GROUP BY a HAVING max(c) > 500",
            10,
            8,
            data,
            self._make_row,
        )
        assert exact == steps

    def test_where_selection_pushdown(self):
        database, data = self._synthetic(seed=23)
        exact, steps = run_random_maintenance(
            database,
            "SELECT a, avg(b) AS ab FROM r WHERE b < 250 GROUP BY a HAVING avg(c) < 700",
            10,
            8,
            data,
            self._make_row,
            config=IMPConfig(selection_pushdown=True),
        )
        assert exact == steps

    def test_topk_query(self):
        database, data = self._synthetic(seed=29)
        exact, steps = run_random_maintenance(
            database,
            "SELECT a, avg(b) AS ab FROM r GROUP BY a ORDER BY a LIMIT 5",
            10,
            6,
            data,
            self._make_row,
        )
        assert exact == steps

    def test_distinct_query(self):
        database, data = self._synthetic(seed=37)
        exact, steps = run_random_maintenance(
            database,
            "SELECT DISTINCT a FROM r WHERE b < 400",
            10,
            6,
            data,
            self._make_row,
        )
        assert exact == steps


class TestJoinMaintenance:
    def _setup(self, seed=7):
        rng = random.Random(seed)
        database = Database()
        database.create_table("r", ["id", "a", "b", "c"], primary_key="id")
        database.create_table("s", ["sid", "d", "e"], primary_key="sid")
        r_rows = [
            (i, rng.randrange(20), rng.randrange(200), rng.randrange(400))
            for i in range(500)
        ]
        s_rows = [(i, i % 150, rng.randrange(50)) for i in range(200)]
        database.insert("r", r_rows)
        database.insert("s", s_rows)
        return database, r_rows, s_rows

    def test_join_maintenance_exact_under_updates_on_both_sides(self):
        database, r_rows, s_rows = self._setup()
        rng = random.Random(41)
        sql = (
            "SELECT a, avg(e) AS ae FROM r JOIN s ON b = d "
            "GROUP BY a HAVING avg(e) < 40"
        )
        plan = database.plan(sql)
        partition = build_database_partition(database, plan, 10)
        engine = IncrementalEngine(plan, partition, database)
        sketch = engine.initialize()
        for step in range(5):
            version = database.version
            new_r = [
                (10_000 + step * 50 + j, rng.randrange(20), rng.randrange(200), rng.randrange(400))
                for j in range(8)
            ]
            new_s = [(20_000 + step * 50 + j, rng.randrange(150), rng.randrange(50)) for j in range(4)]
            dels_r = rng.sample(r_rows, 4)
            for victim in dels_r:
                r_rows.remove(victim)
            database.insert("r", new_r)
            database.insert("s", new_s)
            database.delete_rows("r", dels_r)
            r_rows.extend(new_r)
            s_rows.extend(new_s)
            outcome = engine.maintain(
                database.database_delta_since(plan.referenced_tables(), version)
            )
            sketch = sketch.apply_delta(outcome.sketch_delta)
            assert maintained_matches_truth(engine, sketch, plan, partition, database)
        assert engine.statistics.backend_round_trips > 0

    def test_bloom_filter_skips_round_trip_for_unjoinable_deltas(self):
        database, r_rows, s_rows = self._setup(seed=13)
        sql = "SELECT a, sum(e) AS se FROM r JOIN s ON b = d GROUP BY a HAVING sum(e) > 0"
        plan = database.plan(sql)
        partition = build_database_partition(database, plan, 10)
        engine = IncrementalEngine(plan, partition, database, IMPConfig(use_bloom_filters=True))
        engine.initialize()
        version = database.version
        # b = 9999 joins with nothing in s (d ranges over [0, 150)).
        database.insert("r", [(77_777, 3, 9_999, 10)])
        outcome = engine.maintain(database.database_delta_since(plan.referenced_tables(), version))
        assert engine.statistics.bloom_filtered_tuples >= 1
        assert engine.statistics.backend_round_trips == 0
        assert not outcome.sketch_delta

    def test_bloom_filters_disabled_forces_round_trip(self):
        database, _r, _s = self._setup(seed=19)
        sql = "SELECT a, sum(e) AS se FROM r JOIN s ON b = d GROUP BY a HAVING sum(e) > 0"
        plan = database.plan(sql)
        partition = build_database_partition(database, plan, 10)
        engine = IncrementalEngine(plan, partition, database, IMPConfig(use_bloom_filters=False))
        engine.initialize()
        version = database.version
        database.insert("r", [(88_888, 3, 9_999, 10)])
        engine.maintain(database.database_delta_since(plan.referenced_tables(), version))
        assert engine.statistics.backend_round_trips >= 1


class TestBufferedStateRecapture:
    def test_minmax_buffer_exhaustion_requests_recapture(self):
        database = Database()
        database.create_table("r", ["id", "a", "b", "c"], primary_key="id")
        rows = [(i, i % 3, i, i) for i in range(60)]
        database.insert("r", rows)
        sql = "SELECT a, min(b) AS lo FROM r GROUP BY a HAVING min(b) < 100"
        plan = database.plan(sql)
        partition = build_database_partition(database, plan, 6)
        engine = IncrementalEngine(plan, partition, database, IMPConfig(min_max_buffer=2))
        engine.initialize()
        version = database.version
        # Delete the four smallest values of group 0: more than the buffer holds.
        victims = sorted((row for row in rows if row[1] == 0), key=lambda r: r[2])[:4]
        database.delete_rows("r", victims)
        outcome = engine.maintain(database.database_delta_since(["r"], version))
        assert outcome.needs_recapture

    def test_topk_buffer_exhaustion_requests_recapture(self):
        database = Database()
        database.create_table("r", ["id", "a", "b", "c"], primary_key="id")
        rows = [(i, i, i, i) for i in range(50)]
        database.insert("r", rows)
        sql = "SELECT a, avg(b) AS ab FROM r GROUP BY a ORDER BY a LIMIT 5"
        plan = database.plan(sql)
        partition = build_database_partition(database, plan, 5)
        engine = IncrementalEngine(plan, partition, database, IMPConfig(topk_buffer=8))
        engine.initialize()
        version = database.version
        # Delete the 10 smallest groups: the buffered head of the ranking is gone.
        database.delete_rows("r", rows[:10])
        outcome = engine.maintain(database.database_delta_since(["r"], version))
        assert outcome.needs_recapture

    def test_large_buffers_do_not_trigger_recapture(self):
        database = Database()
        database.create_table("r", ["id", "a", "b", "c"], primary_key="id")
        rows = [(i, i % 5, i, i) for i in range(100)]
        database.insert("r", rows)
        sql = "SELECT a, min(b) AS lo FROM r GROUP BY a HAVING min(b) < 1000"
        plan = database.plan(sql)
        partition = build_database_partition(database, plan, 5)
        engine = IncrementalEngine(plan, partition, database, IMPConfig(min_max_buffer=50))
        engine.initialize()
        version = database.version
        database.delete_rows("r", rows[:3])
        outcome = engine.maintain(database.database_delta_since(["r"], version))
        assert not outcome.needs_recapture


class TestStatisticsAndMemory:
    def test_pushdown_filters_delta_tuples(self):
        database = Database()
        database.create_table("r", ["id", "a", "b", "c"], primary_key="id")
        database.insert("r", [(i, i % 5, i % 100, i) for i in range(200)])
        sql = "SELECT a, avg(c) AS ac FROM r WHERE b < 50 GROUP BY a HAVING avg(c) > 0"
        plan = database.plan(sql)
        partition = build_database_partition(database, plan, 5)
        with_pd = IncrementalEngine(plan, partition, database, IMPConfig(selection_pushdown=True))
        without_pd = IncrementalEngine(
            plan, partition, database, IMPConfig(selection_pushdown=False)
        )
        with_pd.initialize()
        without_pd.initialize()
        version = database.version
        database.insert("r", [(1_000 + i, i % 5, 60 + i % 40, i) for i in range(20)])
        delta = database.database_delta_since(["r"], version)
        with_pd.maintain(delta)
        without_pd.maintain(delta)
        assert with_pd.statistics.delta_tuples_filtered == 20
        assert without_pd.statistics.delta_tuples_filtered == 0
        assert with_pd.statistics.delta_tuples_fetched == 0

    def test_memory_accounting_grows_with_groups(self, synthetic_db):
        database, _rows = synthetic_db
        sql = "SELECT a, avg(b) AS ab FROM r GROUP BY a HAVING avg(c) < 900"
        plan = database.plan(sql)
        partition = build_database_partition(database, plan, 10)
        engine = IncrementalEngine(plan, partition, database)
        assert engine.memory_bytes() >= 0
        engine.initialize()
        assert engine.memory_bytes() > 1000
