"""Tests for the versioned in-memory backend database."""

import pytest

from repro.core.errors import StorageError
from repro.storage.database import Database
from repro.storage.statistics import (
    collect_column_statistics,
    equi_depth_boundaries,
    equi_width_boundaries,
    histogram_counts,
)


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.create_table("t", ["id", "v"], primary_key="id")
    database.insert("t", [(i, i * 10) for i in range(10)])
    return database


class TestCatalog:
    def test_create_and_drop(self, db):
        db.create_table("extra", ["x"])
        assert db.has_table("extra")
        db.drop_table("extra")
        assert not db.has_table("extra")

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(StorageError):
            db.create_table("t", ["x"])

    def test_unknown_table_rejected(self, db):
        with pytest.raises(StorageError):
            db.table("missing")
        with pytest.raises(StorageError):
            db.drop_table("missing")

    def test_table_names_are_sorted(self, db):
        db.create_table("a_table", ["x"])
        assert db.table_names() == ["a_table", "t"]

    def test_names_are_case_insensitive(self, db):
        assert db.has_table("T")
        assert db.schema_of("T").attributes == ("id", "v")


class TestVersionsAndDeltas:
    def test_versions_increase_per_commit(self, db):
        assert db.version == 1
        db.insert("t", [(100, 1)])
        assert db.version == 2
        db.delete_rows("t", [(100, 1)])
        assert db.version == 3

    def test_empty_update_does_not_bump_version(self, db):
        version = db.version
        assert db.insert("t", []) == version
        assert db.delete_where("t", lambda row: False) == version

    def test_delta_since(self, db):
        version = db.version
        db.insert("t", [(100, 1), (101, 2)])
        db.delete_rows("t", [(0, 0)])
        delta = db.delta_since("t", version)
        assert delta.insert_count == 2
        assert delta.delete_count == 1

    def test_database_delta_since_filters_tables(self, db):
        db.create_table("u", ["x"])
        version = db.version
        db.insert("t", [(200, 5)])
        db.insert("u", [(1,)])
        delta = db.database_delta_since(["t"], version)
        assert "t" in delta and "u" not in delta

    def test_tables_changed_since(self, db):
        version = db.version
        db.insert("t", [(300, 1)])
        assert db.tables_changed_since(version) == {"t"}

    def test_invalid_version_range(self, db):
        with pytest.raises(StorageError):
            db.delta_since("t", db.version + 5)

    def test_snapshot_relation_reconstructs_history(self, db):
        v1 = db.version
        db.insert("t", [(100, 1)])
        db.delete_rows("t", [(0, 0)])
        past = db.snapshot_relation("t", v1)
        assert past.multiplicity((0, 0)) == 1
        assert past.multiplicity((100, 1)) == 0
        current = db.snapshot_relation("t", db.version)
        assert current.multiplicity((100, 1)) == 1


class TestQueriesAndUpdates:
    def test_sql_query(self, db):
        result = db.query("SELECT id, v FROM t WHERE v >= 80")
        assert sorted(result.rows()) == [(8, 80), (9, 90)]

    def test_execute_insert_and_delete_sql(self, db):
        db.execute("INSERT INTO t VALUES (50, 500)")
        assert db.table("t").lookup_by_key(50) == (50, 500)
        db.execute("DELETE FROM t WHERE v = 500")
        assert db.table("t").lookup_by_key(50) is None

    def test_execute_insert_with_column_list(self, db):
        db.execute("INSERT INTO t (v, id) VALUES (990, 99)")
        assert db.table("t").lookup_by_key(99) == (99, 990)

    def test_execute_select_returns_relation(self, db):
        result = db.execute("SELECT id FROM t WHERE id < 2")
        assert sorted(result.rows()) == [(0,), (1,)]

    def test_delete_where_callable(self, db):
        db.delete_where("t", lambda row: row[1] >= 50)
        assert len(db.table("t")) == 5

    def test_scan_counter_increases(self, db):
        before = db.scan_count
        db.query("SELECT * FROM t")
        assert db.scan_count > before


class TestStatistics:
    def test_column_statistics(self, db):
        stats = db.column_statistics("t", "v")
        assert stats.row_count == 10
        assert stats.minimum == 0 and stats.maximum == 90
        assert stats.distinct_count == 10

    def test_collect_column_statistics_handles_nulls(self):
        stats = collect_column_statistics("x", [1, None, 3])
        assert stats.null_count == 1
        assert stats.distinct_count == 2

    def test_equi_depth_ranges(self, db):
        boundaries = db.equi_depth_ranges("t", "v", 5)
        assert boundaries[0] == 0 and boundaries[-1] == 90
        assert boundaries == sorted(boundaries)

    def test_equi_depth_boundaries_on_skewed_data(self):
        boundaries = equi_depth_boundaries([1] * 100 + [2, 3], 10)
        assert boundaries[0] == 1 and boundaries[-1] == 3
        assert len(boundaries) >= 2

    def test_equi_depth_rejects_empty(self):
        with pytest.raises(ValueError):
            equi_depth_boundaries([], 4)

    def test_equi_width(self):
        assert equi_width_boundaries(0, 10, 2) == [0, 5, 10]
        assert equi_width_boundaries(5, 5, 3) == [5, 5]
        with pytest.raises(ValueError):
            equi_width_boundaries(0, 10, 0)

    def test_histogram_counts(self):
        counts = histogram_counts([1, 2, 3, 4, 5], [1, 3, 5])
        assert counts == [2, 3]
        with pytest.raises(ValueError):
            histogram_counts([1], [1])
