"""Property-based end-to-end checks of incremental maintenance (Theorem 6.1).

Hypothesis drives random update sequences against randomly-shaped synthetic
data and checks, after every maintenance step, that

* the maintained sketch over-approximates a freshly captured accurate sketch
  (the formal guarantee of Theorem 6.1), and
* answering the query through the maintained sketch returns exactly the same
  result as evaluating it over the full database (safety of the sketch).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.imp.engine import IMPConfig, IncrementalEngine
from repro.sketch.capture import capture_sketch
from repro.sketch.selection import build_database_partition
from repro.sketch.use import instrument_plan
from repro.storage.database import Database

QUERIES = [
    "SELECT a, avg(b) AS ab FROM r GROUP BY a HAVING avg(c) < 550",
    "SELECT a, sum(b) AS sb FROM r GROUP BY a HAVING sum(b) > 400",
    "SELECT a, count(*) AS n, max(c) AS mx FROM r GROUP BY a HAVING count(*) > 1",
    "SELECT a, avg(b) AS ab FROM r WHERE b < 300 GROUP BY a HAVING avg(c) < 700",
    "SELECT a, avg(b) AS ab FROM r GROUP BY a ORDER BY a LIMIT 4",
]

update_batches = st.lists(
    st.tuples(st.integers(min_value=0, max_value=10), st.integers(min_value=0, max_value=6)),
    min_size=1,
    max_size=5,
)


def build_database(seed: int, num_rows: int, num_groups: int):
    rng = random.Random(seed)
    database = Database()
    database.create_table("r", ["id", "a", "b", "c"], primary_key="id")
    rows = [
        (i, rng.randrange(num_groups), rng.randrange(500), rng.randrange(1000))
        for i in range(num_rows)
    ]
    database.insert("r", rows)
    return database, rows, rng


class TestMaintenanceProperties:
    @given(
        query=st.sampled_from(QUERIES),
        seed=st.integers(min_value=0, max_value=10_000),
        batches=update_batches,
        fragments=st.integers(min_value=2, max_value=16),
    )
    @settings(max_examples=25, deadline=None)
    def test_maintained_sketch_overapproximates_and_stays_safe(
        self, query, seed, batches, fragments
    ):
        database, rows, rng = build_database(seed, num_rows=250, num_groups=12)
        plan = database.plan(query)
        partition = build_database_partition(database, plan, fragments)
        engine = IncrementalEngine(plan, partition, database)
        sketch = engine.initialize()
        next_id = 10_000
        for insert_count, delete_count in batches:
            version = database.version
            inserts = [
                (next_id + i, rng.randrange(12), rng.randrange(500), rng.randrange(1000))
                for i in range(insert_count)
            ]
            next_id += insert_count
            deletes = rng.sample(rows, min(delete_count, len(rows)))
            for victim in deletes:
                rows.remove(victim)
            rows.extend(inserts)
            if inserts:
                database.insert("r", inserts)
            if deletes:
                database.delete_rows("r", deletes)
            if not inserts and not deletes:
                continue
            outcome = engine.maintain(database.database_delta_since(["r"], version))
            if outcome.needs_recapture:
                engine.reset()
                sketch = engine.initialize()
            else:
                sketch = sketch.apply_delta(outcome.sketch_delta)

            accurate = capture_sketch(plan, partition, database)
            assert set(sketch.fragment_ids()) >= set(accurate.fragment_ids())

            through_sketch = database.query(instrument_plan(plan, sketch))
            full = database.query(plan)
            assert through_sketch == full

    @given(
        seed=st.integers(min_value=0, max_value=1_000),
        buffer_limit=st.integers(min_value=2, max_value=20),
    )
    @settings(max_examples=15, deadline=None)
    def test_buffered_minmax_is_always_safe_or_recaptured(self, seed, buffer_limit):
        database, rows, rng = build_database(seed, num_rows=150, num_groups=6)
        query = "SELECT a, min(b) AS lo FROM r GROUP BY a HAVING min(b) < 400"
        plan = database.plan(query)
        partition = build_database_partition(database, plan, 6)
        engine = IncrementalEngine(
            plan, partition, database, IMPConfig(min_max_buffer=buffer_limit)
        )
        sketch = engine.initialize()
        for _ in range(3):
            version = database.version
            deletes = rng.sample(rows, min(len(rows), rng.randrange(1, 12)))
            for victim in deletes:
                rows.remove(victim)
            database.delete_rows("r", deletes)
            outcome = engine.maintain(database.database_delta_since(["r"], version))
            if outcome.needs_recapture:
                engine.reset()
                sketch = engine.initialize()
            else:
                sketch = sketch.apply_delta(outcome.sketch_delta)
            through_sketch = database.query(instrument_plan(plan, sketch))
            assert through_sketch == database.query(plan)
