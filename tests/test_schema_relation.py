"""Tests for :mod:`repro.relational.schema`."""

import pytest

from repro.core.errors import SchemaError
from repro.relational.schema import Relation, Schema


class TestSchema:
    def test_attribute_order_is_preserved(self):
        schema = Schema(["b", "a", "c"])
        assert schema.attributes == ("b", "a", "c")
        assert list(schema) == ["b", "a", "c"]

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a", "a"])

    def test_index_of_bare_and_qualified(self):
        schema = Schema(["r.a", "r.b", "s.c"])
        assert schema.index_of("r.a") == 0
        assert schema.index_of("b") == 1
        assert schema.index_of("c") == 2

    def test_ambiguous_bare_name_raises(self):
        schema = Schema(["r.a", "s.a"])
        with pytest.raises(SchemaError):
            schema.index_of("a")
        assert schema.index_of("r.a") == 0

    def test_unknown_attribute_raises(self):
        with pytest.raises(SchemaError):
            Schema(["a"]).index_of("zzz")

    def test_has(self):
        schema = Schema(["r.a", "b"])
        assert schema.has("a")
        assert schema.has("r.a")
        assert not schema.has("nope")

    def test_qualify_and_unqualify(self):
        schema = Schema(["a", "b"]).qualify("t")
        assert schema.attributes == ("t.a", "t.b")
        assert schema.unqualified().attributes == ("a", "b")

    def test_concat(self):
        left = Schema(["r.a"])
        right = Schema(["s.b"])
        assert left.concat(right).attributes == ("r.a", "s.b")

    def test_equality_and_hash(self):
        assert Schema(["a", "b"]) == Schema(["a", "b"])
        assert Schema(["a"]) != Schema(["b"])
        assert hash(Schema(["a"])) == hash(Schema(["a"]))

    def test_bare_name(self):
        assert Schema.bare_name("table.column") == "column"
        assert Schema.bare_name("column") == "column"


class TestRelation:
    def test_add_and_multiplicity(self):
        relation = Relation(Schema(["a", "b"]))
        relation.add((1, 2))
        relation.add((1, 2), 2)
        assert relation.multiplicity((1, 2)) == 3
        assert len(relation) == 3
        assert relation.distinct_count() == 1

    def test_arity_mismatch_rejected(self):
        relation = Relation(Schema(["a"]))
        with pytest.raises(SchemaError):
            relation.add((1, 2))

    def test_negative_multiplicity_rejected(self):
        relation = Relation(Schema(["a"]))
        with pytest.raises(ValueError):
            relation.add((1,), -1)

    def test_zero_multiplicity_is_noop(self):
        relation = Relation(Schema(["a"]))
        relation.add((1,), 0)
        assert len(relation) == 0

    def test_remove(self):
        relation = Relation(Schema(["a"]), [(1,), (1,), (2,)])
        assert relation.remove((1,), 1) == 1
        assert relation.multiplicity((1,)) == 1
        assert relation.remove((1,), 5) == 1
        assert (1,) not in relation

    def test_rows_iterates_duplicates(self):
        relation = Relation(Schema(["a"]), {(1,): 2, (2,): 1})
        assert sorted(relation.rows()) == [(1,), (1,), (2,)]
        assert sorted(relation.distinct_rows()) == [(1,), (2,)]

    def test_union_adds_multiplicities(self):
        first = Relation(Schema(["a"]), {(1,): 1})
        second = Relation(Schema(["a"]), {(1,): 2, (2,): 1})
        combined = first.union(second)
        assert combined.multiplicity((1,)) == 3
        assert combined.multiplicity((2,)) == 1

    def test_difference_floors_at_zero(self):
        first = Relation(Schema(["a"]), {(1,): 1})
        second = Relation(Schema(["a"]), {(1,): 5})
        assert len(first.difference(second)) == 0

    def test_union_arity_mismatch_raises(self):
        with pytest.raises(SchemaError):
            Relation(Schema(["a"])).union(Relation(Schema(["a", "b"])))

    def test_equality(self):
        a = Relation(Schema(["x"]), {(1,): 2})
        b = Relation(Schema(["x"]), {(1,): 2})
        c = Relation(Schema(["x"]), {(1,): 1})
        assert a == b
        assert a != c

    def test_copy_is_independent(self):
        original = Relation(Schema(["x"]), {(1,): 1})
        clone = original.copy()
        clone.add((2,))
        assert (2,) not in original

    def test_to_sorted_list_handles_mixed_types(self):
        relation = Relation(Schema(["x"]), [(None,), ("z",), (1,)])
        assert relation.to_sorted_list() == [(None,), (1,), ("z",)]

    def test_relations_are_unhashable(self):
        with pytest.raises(TypeError):
            hash(Relation(Schema(["x"])))
