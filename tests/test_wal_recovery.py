"""Tests for the durability layer: WAL format, checkpoints, recovery.

These are the deterministic, targeted tests of the durable backend: on-disk
framing and torn-tail handling, checkpoint atomicity and fallback, WAL/version
chaining, dirty-shutdown edge cases (ENOSPC mid-append, failing fsync,
zero-length and garbage log files), the retention-safety interaction between
audit pruning and checkpoints, and the recovered database behaving as a
first-class citizen (sessions, snapshot reads, persisted IMP state).  The
exhaustive every-I/O-point crash sweep lives in ``test_crash_recovery.py``.
"""

from __future__ import annotations

import errno
import json
import os
import zlib

import pytest

from repro.core.errors import StorageError
from repro.imp.maintenance import IncrementalMaintainer
from repro.imp.persistence import StatePersistence
from repro.sketch.selection import build_database_partition
from repro.storage.database import Database
from repro.storage.delta import DatabaseDelta, Delta
from repro.storage.faults import FaultInjector
from repro.storage.recovery import (
    WAL_FILE,
    load_checkpoint,
    recover_database,
    state_fingerprint,
)
from repro.storage.wal import (
    FSYNC_BATCH,
    FSYNC_OFF,
    WAL_MAGIC,
    WriteAheadLog,
    scan_wal,
)
from repro.workloads.queries import q_groups
from repro.workloads.synthetic import load_synthetic


def wal_path(tmp_path) -> str:
    return str(tmp_path / "wal.log")


def build_sample_db(data_dir: str, **kwargs) -> Database:
    """A small durable database with DDL, an index and three commits."""
    db = Database("sample", data_dir=data_dir, **kwargs)
    db.create_table("r", ["id", "a", "v"], primary_key="id")
    db.create_index("r", "a")
    db.insert("r", [(1, 10, 1.5), (2, 20, 2.5), (3, 10, 3.25)])
    db.insert("r", [(4, 30, 4.0)])
    db.delete_rows("r", [(2, 20, 2.5)])
    return db


class TestWalFormat:
    def test_append_scan_round_trip(self, tmp_path):
        log = WriteAheadLog(wal_path(tmp_path))
        log.open()
        assert log.append({"type": "commit", "version": 1}) == 0
        assert log.append({"type": "commit", "version": 2}) == 1
        log.close()
        scan = scan_wal(wal_path(tmp_path))
        assert [r["version"] for r in scan.records] == [1, 2]
        assert [r["lsn"] for r in scan.records] == [0, 1]
        assert scan.torn_bytes == 0

    def test_fresh_file_gets_magic(self, tmp_path):
        log = WriteAheadLog(wal_path(tmp_path))
        scan = log.open()
        log.close()
        assert not scan.existed
        with open(wal_path(tmp_path), "rb") as handle:
            assert handle.read() == WAL_MAGIC

    def test_every_truncation_point_recovers_the_prefix(self, tmp_path):
        """Chop the file at every byte length: the scan must always return
        exactly the records whose frames are fully intact."""
        path = wal_path(tmp_path)
        log = WriteAheadLog(path)
        log.open()
        boundaries = [len(WAL_MAGIC)]
        for version in (1, 2, 3):
            log.append({"type": "commit", "version": version, "pad": "x" * 20})
            boundaries.append(log.size_bytes)
        log.close()
        blob = open(path, "rb").read()
        for cut in range(len(blob) + 1):
            with open(path, "wb") as handle:
                handle.write(blob[:cut])
            scan = scan_wal(path)
            expected = sum(1 for b in boundaries[1:] if b <= cut)
            assert len(scan.records) == expected, f"cut at {cut}"
            if cut < len(WAL_MAGIC):
                # The magic itself is torn: the whole file is the tear.
                assert scan.torn_bytes == cut
            else:
                assert scan.torn_bytes == cut - boundaries[expected]

    def test_reopen_truncates_torn_tail_and_appends(self, tmp_path):
        path = wal_path(tmp_path)
        log = WriteAheadLog(path)
        log.open()
        log.append({"type": "commit", "version": 1})
        end = log.size_bytes
        log.close()
        with open(path, "ab") as handle:
            handle.write(b"\x00\x00\x00\x10partial")  # torn frame
        log = WriteAheadLog(path)
        scan = log.open()
        assert len(scan.records) == 1 and scan.torn_bytes > 0
        assert os.path.getsize(path) == end
        log.append({"type": "commit", "version": 2})
        log.close()
        final = scan_wal(path)
        assert [r["version"] for r in final.records] == [1, 2]
        assert [r["lsn"] for r in final.records] == [0, 1]
        assert final.torn_bytes == 0

    def test_corrupted_payload_byte_stops_the_scan(self, tmp_path):
        path = wal_path(tmp_path)
        log = WriteAheadLog(path)
        log.open()
        log.append({"type": "commit", "version": 1})
        log.append({"type": "commit", "version": 2})
        log.close()
        blob = bytearray(open(path, "rb").read())
        blob[-2] ^= 0xFF  # flip a byte inside the last record's payload
        open(path, "wb").write(bytes(blob))
        scan = scan_wal(path)
        assert [r["version"] for r in scan.records] == [1]
        assert "checksum" in " ".join(scan.notes)

    def test_garbage_file_is_rejected_loudly(self, tmp_path):
        path = wal_path(tmp_path)
        open(path, "wb").write(b"definitely not a wal file")
        with pytest.raises(StorageError, match="not a repro write-ahead log"):
            scan_wal(path)

    def test_zero_length_and_torn_magic_are_fresh(self, tmp_path):
        path = wal_path(tmp_path)
        open(path, "wb").close()
        assert scan_wal(path).records == []
        open(path, "wb").write(WAL_MAGIC[:4])
        scan = scan_wal(path)
        assert scan.records == [] and scan.torn_bytes == 4
        log = WriteAheadLog(path)
        log.open()
        log.append({"type": "commit", "version": 1})
        log.close()
        assert len(scan_wal(path).records) == 1

    def test_rotation_keeps_lsns_increasing(self, tmp_path):
        path = wal_path(tmp_path)
        log = WriteAheadLog(path)
        log.open()
        log.append({"v": 1})
        log.append({"v": 2})
        log.rotate()
        assert log.append({"v": 3}) == 2
        log.close()
        assert [r["lsn"] for r in scan_wal(path).records] == [2]

    def test_unknown_fsync_policy_is_rejected(self, tmp_path):
        with pytest.raises(StorageError, match="fsync policy"):
            WriteAheadLog(wal_path(tmp_path), fsync="sometimes")
        with pytest.raises(StorageError, match="batch_interval"):
            WriteAheadLog(wal_path(tmp_path), fsync=FSYNC_BATCH, batch_interval=0)

    def test_unserializable_record_is_a_storage_error(self, tmp_path):
        log = WriteAheadLog(wal_path(tmp_path))
        log.open()
        with pytest.raises(StorageError, match="not serializable"):
            log.append({"bad": object()})
        log.close()


class TestDurableDatabase:
    def test_round_trip_is_bit_identical(self, tmp_path):
        db = build_sample_db(str(tmp_path / "d"))
        before = state_fingerprint(db)
        db.close()
        recovered, report = recover_database(str(tmp_path / "d"))
        assert state_fingerprint(recovered) == before
        assert report.commits_replayed == 3 and report.ddl_replayed == 2
        assert recovered.has_index("r", "a")
        assert recovered.table("r").last_modified_version == 3

    def test_recovery_without_close_models_a_kill(self, tmp_path):
        # The WAL file is unbuffered, so simply abandoning the object (no
        # close, no flush) must lose nothing -- like a process kill.
        db = build_sample_db(str(tmp_path / "d"))
        before = state_fingerprint(db)
        recovered, _report = recover_database(str(tmp_path / "d"))
        assert state_fingerprint(recovered) == before

    def test_checkpoint_rotates_and_recovery_replays_the_tail(self, tmp_path):
        db = build_sample_db(str(tmp_path / "d"))
        path = db.checkpoint()
        assert os.path.basename(path) == "checkpoint-000000000003.ckpt"
        assert db.last_checkpoint_version == 3
        db.insert("r", [(5, 40, 5.5)])
        before = state_fingerprint(db)
        db.close()
        recovered, report = recover_database(str(tmp_path / "d"))
        assert state_fingerprint(recovered) == before
        assert report.checkpoint_version == 3
        assert report.commits_replayed == 1  # only the post-checkpoint commit

    def test_crash_between_checkpoint_and_rotation_is_skipped_by_lsn(self, tmp_path):
        db = build_sample_db(str(tmp_path / "d"))
        db.checkpoint()
        # Simulate the crash window by re-appending the pre-checkpoint
        # history: records whose LSN the checkpoint already covers must be
        # skipped, not replayed (replaying would double-apply).
        checkpoint = load_checkpoint(
            str(tmp_path / "d" / "checkpoint-000000000003.ckpt")
        )
        assert checkpoint["wal_lsn"] == 4  # 2 DDL + 3 commits
        recovered, report = recover_database(str(tmp_path / "d"))
        assert report.wal_records_skipped == 0  # rotation emptied the log
        assert state_fingerprint(recovered)["version"] == 3

    def test_corrupt_checkpoint_without_full_log_fails_loudly(self, tmp_path):
        db = build_sample_db(str(tmp_path / "d"))
        db.checkpoint()
        db.insert("r", [(6, 60, 6.0)])
        db.close()
        ckpt = tmp_path / "d" / "checkpoint-000000000003.ckpt"
        blob = bytearray(ckpt.read_bytes())
        blob[-1] ^= 0xFF
        ckpt.write_bytes(bytes(blob))
        # The only checkpoint is bad and the rotated WAL no longer reaches
        # back to version 0: recovery must refuse rather than serve a
        # silently truncated history.
        with pytest.raises(StorageError, match="history gap|does not chain"):
            recover_database(str(tmp_path / "d"))

    def test_older_checkpoint_is_used_when_newest_is_corrupt(self, tmp_path):
        db = build_sample_db(str(tmp_path / "d"))
        db.checkpoint()  # version 3
        db.checkpoint()  # version 3 again -- same version, same file name
        db.insert("r", [(7, 70, 7.0)])
        before = state_fingerprint(db)
        db.close()
        # Write a bogus *newer* checkpoint; recovery must skip it, fall back
        # to the valid one, and still replay the commit from the log.
        bogus = tmp_path / "d" / "checkpoint-000000000099.ckpt"
        bogus.write_bytes(b"\x00\x01\x02garbage")
        recovered, report = recover_database(str(tmp_path / "d"))
        assert [os.path.basename(p) for p in report.corrupt_checkpoints] == [
            "checkpoint-000000000099.ckpt"
        ]
        assert report.checkpoint_version == 3
        assert state_fingerprint(recovered) == before

    def test_checkpoints_are_pruned_to_the_newest_two(self, tmp_path):
        db = Database("p", data_dir=str(tmp_path / "d"))
        db.create_table("r", ["id"], primary_key="id")
        for i in range(4):
            db.insert("r", [(i,)])
            db.checkpoint()
        names = sorted(
            entry
            for entry in os.listdir(tmp_path / "d")
            if entry.startswith("checkpoint-")
        )
        assert names == [
            "checkpoint-000000000003.ckpt",
            "checkpoint-000000000004.ckpt",
        ]
        db.close()

    def test_auto_checkpoint_interval(self, tmp_path):
        db = Database("a", data_dir=str(tmp_path / "d"), checkpoint_interval=2)
        db.create_table("r", ["id"], primary_key="id")
        db.insert("r", [(1,)])
        assert db.last_checkpoint_version == 0
        db.insert("r", [(2,)])
        assert db.last_checkpoint_version == 2
        db.insert("r", [(3,)])
        db.insert("r", [(4,)])
        assert db.last_checkpoint_version == 4
        db.close()

    def test_multi_table_commit_replays_atomically(self, tmp_path):
        db = Database("m", data_dir=str(tmp_path / "d"))
        db.create_table("r", ["id", "a"], primary_key="id")
        db.create_table("s", ["id", "b"], primary_key="id")
        db.insert("r", [(1, 10)])
        db.insert("s", [(1, 99)])
        delta = DatabaseDelta()
        delta.delta_for("r", db.schema_of("r")).add_insert((2, 20))
        delta.delta_for("s", db.schema_of("s")).add_delete((1, 99))
        db.apply_database_delta(delta)
        before = state_fingerprint(db)
        db.close()
        recovered, report = recover_database(str(tmp_path / "d"))
        assert state_fingerprint(recovered) == before
        assert recovered.version == 3
        # Both tables moved in one version step, exactly as committed.
        assert recovered.tables_changed_since(2) == {"r", "s"}

    def test_drop_table_is_durable(self, tmp_path):
        db = Database("dd", data_dir=str(tmp_path / "d"))
        db.create_table("gone", ["id"], primary_key="id")
        db.create_table("kept", ["id"], primary_key="id")
        db.insert("gone", [(1,)])
        db.drop_table("gone")
        db.close()
        recovered, _report = recover_database(str(tmp_path / "d"))
        assert recovered.table_names() == ["kept"]

    def test_in_memory_default_is_unchanged(self, tmp_path):
        db = Database()
        assert not db.is_durable and db.data_dir is None
        assert db.recovery_report is None
        with pytest.raises(StorageError, match="data_dir"):
            db.checkpoint()
        db.close()  # a no-op, must not raise
        assert not list(tmp_path.iterdir())

    def test_fsync_policies_all_recover(self, tmp_path):
        for policy in ("always", "batch", "off"):
            data_dir = str(tmp_path / policy)
            db = build_sample_db(data_dir, fsync=policy, batch_interval=2)
            before = state_fingerprint(db)
            db.close()
            recovered, _report = recover_database(data_dir)
            assert state_fingerprint(recovered) == before, policy

    def test_wal_version_gap_fails_loudly(self, tmp_path):
        db = build_sample_db(str(tmp_path / "d"))
        db.close()
        # Surgically remove the middle commit record from the log: replay
        # must refuse the resulting version gap instead of applying commit 3
        # on top of version 1.
        path = str(tmp_path / "d" / WAL_FILE)
        records = scan_wal(path).records
        with open(path, "wb") as handle:
            handle.write(WAL_MAGIC)
            for record in records:
                if record.get("version") == 2:
                    continue
                payload = json.dumps(
                    record, sort_keys=True, separators=(",", ":")
                ).encode()
                handle.write(
                    len(payload).to_bytes(4, "big")
                    + zlib.crc32(payload).to_bytes(4, "big")
                    + payload
                )
        with pytest.raises(StorageError, match="expected commit version 2"):
            recover_database(str(tmp_path / "d"))


class TestDirtyShutdownEdges:
    def test_enospc_mid_append_aborts_the_commit_cleanly(self, tmp_path):
        data_dir = str(tmp_path / "d")
        db = Database("e", data_dir=data_dir)
        db.create_table("r", ["id"], primary_key="id")
        db.insert("r", [(1,)])
        injector = FaultInjector(
            error_at=0, error=OSError(errno.ENOSPC, "no space left on device")
        )
        db._durability._wal._file = injector.files().open(
            os.path.join(data_dir, WAL_FILE)
        )
        db._durability._wal._file.seek(db._durability._wal.size_bytes)
        with pytest.raises(StorageError, match="commit aborted"):
            db.insert("r", [(2,)])
        # Memory did not move and the log matches it.
        assert db.version == 1 and db.row_count("r") == 1
        db.insert("r", [(3,)])  # the fault fires once; the next commit lands
        before = state_fingerprint(db)
        db.close()
        recovered, _report = recover_database(data_dir)
        assert state_fingerprint(recovered) == before

    def test_enospc_partial_write_is_rolled_back(self, tmp_path):
        data_dir = str(tmp_path / "d")
        db = Database("e", data_dir=data_dir)
        db.create_table("r", ["id"], primary_key="id")
        size_before = db._durability.wal.size_bytes
        injector = FaultInjector(
            error_at=0,
            partial_bytes=5,
            error=OSError(errno.ENOSPC, "no space left on device"),
        )
        db._durability._wal._file = injector.files().open(
            os.path.join(data_dir, WAL_FILE)
        )
        db._durability._wal._file.seek(size_before)
        with pytest.raises(StorageError, match="commit aborted"):
            db.insert("r", [(1,)])
        # The five torn bytes were truncated away by the rollback.
        assert os.path.getsize(os.path.join(data_dir, WAL_FILE)) == size_before
        db.close()
        recovered, report = recover_database(data_dir)
        assert recovered.version == 0 and recovered.row_count("r") == 0
        assert report.torn_bytes_truncated == 0

    def test_failing_fsync_aborts_the_commit(self, tmp_path):
        data_dir = str(tmp_path / "d")
        db = Database("f", data_dir=data_dir)
        db.create_table("r", ["id"], primary_key="id")
        injector = FaultInjector(
            error_at=1, error=OSError(errno.EIO, "fsync: I/O error")
        )
        db._durability._wal._file = injector.files().open(
            os.path.join(data_dir, WAL_FILE)
        )
        db._durability._wal._file.seek(db._durability.wal.size_bytes)
        with pytest.raises(StorageError, match="commit aborted"):
            db.insert("r", [(1,)])
        assert db.version == 0
        db.close()
        recovered, _report = recover_database(data_dir)
        assert recovered.version == 0 and recovered.row_count("r") == 0

    def test_failed_checkpoint_leaves_previous_state_intact(self, tmp_path):
        data_dir = str(tmp_path / "d")
        db = build_sample_db(data_dir)
        before = state_fingerprint(db)
        injector = FaultInjector(
            error_at=2, error=OSError(errno.ENOSPC, "no space left on device")
        )
        db._durability._files = injector.files()
        with pytest.raises(StorageError, match="checkpoint failed"):
            db.checkpoint()
        assert db.last_checkpoint_version == 0
        assert db._durability.last_checkpoint_error is not None
        db._durability._files = type(injector.files()).__bases__[0]()
        db.close()
        recovered, report = recover_database(data_dir)
        assert state_fingerprint(recovered) == before
        # The aborted attempt left at most a stray .tmp file, which recovery
        # ignores and the next successful checkpoint overwrites.
        assert report.checkpoint_version == 0

    def test_garbage_wal_file_fails_loudly_on_open(self, tmp_path):
        data_dir = tmp_path / "d"
        data_dir.mkdir()
        (data_dir / WAL_FILE).write_bytes(b"this is not a log")
        with pytest.raises(StorageError, match="not a repro write-ahead log"):
            Database("g", data_dir=str(data_dir))

    def test_zero_length_wal_recovers_to_an_empty_database(self, tmp_path):
        data_dir = tmp_path / "d"
        data_dir.mkdir()
        (data_dir / WAL_FILE).write_bytes(b"")
        recovered, report = recover_database(str(data_dir))
        assert recovered.version == 0 and recovered.table_names() == []
        assert not report.fresh  # the file existed, even if empty

    def test_fresh_data_dir_reports_fresh(self, tmp_path):
        db = Database("fresh", data_dir=str(tmp_path / "new"))
        assert db.recovery_report.fresh
        assert db.version == 0
        db.close()


class TestRetentionSafety:
    def test_audit_prune_is_clamped_to_the_checkpoint(self, tmp_path):
        """Regression test: pruning audit history past the last durable
        checkpoint would make the in-memory history shorter than the WAL
        tail -- a crash right after would "recover" commits the live process
        had already forgotten about."""
        db = Database("ret", data_dir=str(tmp_path / "d"))
        db.create_table("r", ["id"], primary_key="id")
        for i in range(5):
            db.insert("r", [(i,)])
        db.checkpoint()  # durable floor at version 6 (1 DDL is version-less)
        checkpoint_version = db.last_checkpoint_version
        for i in range(5, 10):
            db.insert("r", [(i,)])
        report = db.prune_history(prune_audit=True)
        # No session is open, so the requested floor is the current version
        # (11) -- but the clamp must hold the line at the checkpoint.
        assert report["floor"] == checkpoint_version
        assert db.audit_floor == checkpoint_version
        # Every post-checkpoint delta is still answerable...
        delta = db.delta_since("r", checkpoint_version)
        assert len(list(delta.inserts())) == 5
        # ...and the recovered state still matches the live one exactly.
        before = state_fingerprint(db)
        db.close()
        recovered, _report = recover_database(str(tmp_path / "d"))
        assert state_fingerprint(recovered) == before

    def test_checkpoint_advances_the_prune_floor(self, tmp_path):
        db = Database("ret2", data_dir=str(tmp_path / "d"))
        db.create_table("r", ["id"], primary_key="id")
        for i in range(4):
            db.insert("r", [(i,)])
        db.checkpoint()
        db.prune_history(prune_audit=True)
        assert db.audit_floor == db.last_checkpoint_version == db.version
        with pytest.raises(StorageError, match="pruned"):
            db.delta_since("r", 0)
        db.close()

    def test_in_memory_databases_prune_unclamped(self):
        db = Database()
        db.create_table("r", ["id"], primary_key="id")
        for i in range(3):
            db.insert("r", [(i,)])
        report = db.prune_history(prune_audit=True)
        assert report["floor"] == 3 and report["audit_records"] == 3


class TestRecoveredDatabaseIsFirstClass:
    def test_sessions_and_snapshots_work_after_recovery(self, tmp_path):
        db = build_sample_db(str(tmp_path / "d"))
        db.close()
        recovered, _report = recover_database(str(tmp_path / "d"))
        session = recovered.connect()
        assert session.pinned_version == 3
        baseline = session.query("SELECT id FROM r").to_sorted_list()
        recovered.insert("r", [(9, 90, 9.0)])
        # Snapshot isolation holds across the recovery boundary: the pinned
        # read rolls back through the *replayed* audit records.
        assert session.query("SELECT id FROM r").to_sorted_list() == baseline
        assert session.refresh() == 4
        assert (9,) in session.query("SELECT id FROM r").to_sorted_list()
        session.close()
        recovered.close()

    def test_statistics_and_queries_match_after_recovery(self, tmp_path):
        data_dir = str(tmp_path / "d")
        db = Database("stats", data_dir=data_dir)
        load_synthetic(db, num_rows=400, num_groups=20, seed=13)
        live_stats = db.column_statistics("r", "a")
        live_hist = db.equi_depth_ranges("r", "c", 8)
        live_rows = db.query("SELECT a, SUM(c) AS s FROM r GROUP BY a").to_sorted_list()
        db.close()
        recovered, _report = recover_database(data_dir)
        assert recovered.column_statistics("r", "a") == live_stats
        assert recovered.equi_depth_ranges("r", "c", 8) == live_hist
        assert (
            recovered.query("SELECT a, SUM(c) AS s FROM r GROUP BY a").to_sorted_list()
            == live_rows
        )

    def test_persisted_imp_state_survives_recovery(self, tmp_path):
        data_dir = str(tmp_path / "d")
        db = Database("imp", data_dir=data_dir)
        load_synthetic(db, num_rows=600, num_groups=30, seed=17)
        sql = q_groups(threshold=900)
        plan = db.plan(sql)
        partition = build_database_partition(db, plan, 16)
        maintainer = IncrementalMaintainer(db, plan, partition)
        maintainer.capture()
        persistence = StatePersistence(db)
        persistence.save_maintainer("q", sql, maintainer)
        expected_sketch = sorted(maintainer.sketch.fragment_ids())
        db.close()

        recovered, _report = recover_database(data_dir)
        restored_sql, restored = StatePersistence(recovered).load_maintainer("q")
        assert restored_sql == sql
        assert sorted(restored.sketch.fragment_ids()) == expected_sketch
        # The restored maintainer keeps maintaining incrementally on the
        # recovered database, staying identical to a from-scratch capture.
        recovered.insert(
            "r", [(100_000, 5, 100.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)]
        )
        result = restored.maintain()
        fresh = IncrementalMaintainer(recovered, recovered.plan(sql), partition)
        assert sorted(result.sketch.fragment_ids()) == sorted(
            fresh.capture().sketch.fragment_ids()
        )
        recovered.close()
