"""Tests for :mod:`repro.core.bloom`."""

import pytest

from repro.core.bloom import BloomFilter


class TestConstruction:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            BloomFilter(expected_items=0)

    def test_rejects_invalid_false_positive_rate(self):
        with pytest.raises(ValueError):
            BloomFilter(expected_items=10, false_positive_rate=1.5)

    def test_sizes_scale_with_capacity(self):
        small = BloomFilter(expected_items=10)
        large = BloomFilter(expected_items=10_000)
        assert large.num_bits > small.num_bits

    def test_byte_size_matches_bits(self):
        bloom = BloomFilter(expected_items=100)
        assert bloom.byte_size() == (bloom.num_bits + 7) // 8


class TestMembership:
    def test_no_false_negatives(self):
        bloom = BloomFilter(expected_items=500, false_positive_rate=0.01)
        values = [f"key-{i}" for i in range(500)]
        bloom.add_all(values)
        assert all(value in bloom for value in values)

    def test_absent_values_mostly_rejected(self):
        bloom = BloomFilter(expected_items=500, false_positive_rate=0.01)
        bloom.add_all(range(500))
        false_positives = sum(1 for i in range(10_000, 11_000) if i in bloom)
        # 1% target rate; allow generous slack for a probabilistic structure.
        assert false_positives < 60

    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter(expected_items=16)
        assert 1 not in bloom
        assert "x" not in bloom

    def test_mixed_types_are_supported(self):
        bloom = BloomFilter(expected_items=16)
        bloom.add(("a", 1))
        assert ("a", 1) in bloom
        assert ("a", 2) not in bloom

    def test_stable_across_instances(self):
        # Hashing must not depend on PYTHONHASHSEED: two filters built from the
        # same values answer membership identically.
        first = BloomFilter(expected_items=64)
        second = BloomFilter(expected_items=64)
        first.add_all(["alpha", "beta"])
        second.add_all(["alpha", "beta"])
        probes = ["alpha", "beta", "gamma", "delta"]
        assert [p in first for p in probes] == [p in second for p in probes]


class TestAccounting:
    def test_count_tracks_insertions(self):
        bloom = BloomFilter(expected_items=16)
        bloom.add_all(range(5))
        assert bloom.approximate_count == 5

    def test_fill_ratio_increases(self):
        bloom = BloomFilter(expected_items=64)
        before = bloom.fill_ratio()
        bloom.add_all(range(32))
        assert bloom.fill_ratio() > before
