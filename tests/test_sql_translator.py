"""Tests for SQL-to-algebra translation and query templates."""

import pytest

from repro.core.errors import PlanError
from repro.relational.algebra import (
    Aggregation,
    Distinct,
    Join,
    Projection,
    Selection,
    TableScan,
    TopK,
    walk_plan,
)
from repro.sql.template import template_of
from repro.sql.translator import translate
from repro.storage.database import Database


@pytest.fixture()
def catalog() -> Database:
    database = Database()
    database.create_table("r", ["id", "a", "b", "c"])
    database.create_table("s", ["sid", "d", "e"])
    database.insert("r", [(1, 1, 10, 100), (2, 2, 20, 200), (3, 2, 30, 300)])
    database.insert("s", [(1, 10, 5), (2, 30, 6)])
    return database


def node_types(plan) -> list[str]:
    return [type(node).__name__ for node in walk_plan(plan)]


class TestTranslation:
    def test_select_star_is_bare_scan(self, catalog):
        plan = translate("SELECT * FROM r", catalog)
        assert isinstance(plan, TableScan)

    def test_projection_and_selection(self, catalog):
        plan = translate("SELECT a, b FROM r WHERE a > 1", catalog)
        assert node_types(plan) == ["Projection", "Selection", "TableScan"]

    def test_aggregation_with_having_shape(self, catalog):
        plan = translate(
            "SELECT a, sum(b) AS total FROM r GROUP BY a HAVING sum(b) > 10", catalog
        )
        assert node_types(plan) == ["Projection", "Selection", "Aggregation", "TableScan"]
        aggregation = next(n for n in walk_plan(plan) if isinstance(n, Aggregation))
        assert [agg.alias for agg in aggregation.aggregates] == ["total"]

    def test_having_aggregate_not_in_select_gets_synthetic_alias(self, catalog):
        plan = translate(
            "SELECT a, sum(b) AS total FROM r GROUP BY a HAVING avg(c) < 100", catalog
        )
        aggregation = next(n for n in walk_plan(plan) if isinstance(n, Aggregation))
        aliases = {agg.alias for agg in aggregation.aggregates}
        assert "total" in aliases and len(aliases) == 2

    def test_explicit_join_condition_preserved(self, catalog):
        plan = translate("SELECT a, e FROM r JOIN s ON b = d", catalog)
        join = next(n for n in walk_plan(plan) if isinstance(n, Join))
        assert join.equi_join_keys() == (["b"], ["d"])

    def test_comma_join_where_becomes_join_condition(self, catalog):
        plan = translate("SELECT a, e FROM r, s WHERE b = d AND a > 1", catalog)
        join = next(n for n in walk_plan(plan) if isinstance(n, Join))
        assert join.condition is not None
        # The single-table predicate is pushed below the join.
        selections = [n for n in walk_plan(plan) if isinstance(n, Selection)]
        assert any(
            isinstance(selection.child, TableScan) for selection in selections
        )

    def test_subquery_source_is_requalified(self, catalog):
        plan = translate(
            "SELECT a, avg(b) AS ab FROM "
            "(SELECT a AS a, b AS b FROM r WHERE b < 25) tt JOIN s ON (a = d) "
            "GROUP BY a",
            catalog,
        )
        result = catalog.query(plan)
        assert result.schema.attributes == ("a", "ab")

    def test_order_by_limit_creates_topk(self, catalog):
        plan = translate(
            "SELECT a, sum(b) AS total FROM r GROUP BY a ORDER BY total DESC LIMIT 2",
            catalog,
        )
        assert isinstance(plan, TopK)
        assert plan.k == 2
        assert plan.order_by[0].ascending is False

    def test_order_by_aggregate_expression(self, catalog):
        plan = translate(
            "SELECT a, sum(b) AS total FROM r GROUP BY a ORDER BY sum(b) LIMIT 1", catalog
        )
        assert isinstance(plan, TopK)

    def test_order_by_without_limit_is_ignored(self, catalog):
        plan = translate("SELECT a FROM r ORDER BY a", catalog)
        assert not isinstance(plan, TopK)

    def test_distinct(self, catalog):
        plan = translate("SELECT DISTINCT a FROM r", catalog)
        assert isinstance(plan, Distinct)

    def test_count_star(self, catalog):
        result = catalog.query("SELECT a, count(*) AS n FROM r GROUP BY a")
        assert sorted(result.rows()) == [(1, 1), (2, 2)]

    def test_limit_without_order_by_rejected(self, catalog):
        with pytest.raises(PlanError):
            translate("SELECT a FROM r LIMIT 3", catalog)

    def test_having_without_group_by_rejected(self, catalog):
        with pytest.raises(PlanError):
            translate("SELECT a FROM r HAVING a > 1", catalog)

    def test_order_by_unknown_attribute_rejected(self, catalog):
        with pytest.raises(PlanError):
            translate("SELECT a FROM r ORDER BY zzz LIMIT 1", catalog)


class TestTranslationResults:
    """End-to-end: translated plans compute the expected answers."""

    def test_group_by_having(self, catalog):
        result = catalog.query(
            "SELECT a, sum(b) AS total FROM r GROUP BY a HAVING sum(b) > 15"
        )
        assert sorted(result.rows()) == [(2, 50.0)]

    def test_join_aggregation(self, catalog):
        result = catalog.query(
            "SELECT a, sum(e) AS se FROM r JOIN s ON b = d GROUP BY a"
        )
        assert sorted(result.rows()) == [(1, 5.0), (2, 6.0)]

    def test_arithmetic_in_aggregate(self, catalog):
        result = catalog.query(
            "SELECT a, sum(b * c) AS weighted FROM r GROUP BY a HAVING sum(b * c) > 2000"
        )
        assert sorted(result.rows()) == [(2, 13000.0)]

    def test_top_k_result(self, catalog):
        result = catalog.query("SELECT a, b FROM r ORDER BY b DESC LIMIT 2")
        assert sorted(result.rows()) == [(2, 20), (2, 30)]


class TestTemplates:
    def test_constants_are_parameterized(self):
        first = template_of("SELECT a FROM r WHERE b < 100 GROUP BY a HAVING avg(c) < 5")
        second = template_of("SELECT a FROM r WHERE b < 999 GROUP BY a HAVING avg(c) < 77")
        assert first == second

    def test_different_shapes_differ(self):
        first = template_of("SELECT a FROM r WHERE b < 100")
        second = template_of("SELECT a FROM r WHERE c < 100")
        assert first != second

    def test_limit_is_part_of_template(self):
        first = template_of("SELECT a FROM r ORDER BY a LIMIT 10")
        second = template_of("SELECT a FROM r ORDER BY a LIMIT 20")
        assert first != second

    def test_join_and_subquery_render(self):
        template = template_of(
            "SELECT a, avg(b) AS ab FROM (SELECT a, b FROM r WHERE b < 10) tt "
            "JOIN s ON a = d GROUP BY a"
        )
        assert "JOIN" in template.text
        assert "?" in template.text
