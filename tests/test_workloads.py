"""Tests for the workload generators and query templates."""

import pytest

from repro.imp.middleware import IMPSystem, NoSketchSystem
from repro.storage.database import Database
from repro.workloads.crimes import CRIMES_Q1, CRIMES_Q2, crimes_q2, load_crimes
from repro.workloads.mixed import MixedWorkload, WorkloadRunner, parse_ratio
from repro.workloads.queries import (
    q_endtoend,
    q_groups,
    q_having,
    q_join,
    q_joinsel,
    q_selpd,
    q_sketch,
    q_space,
    q_topk,
)
from repro.workloads.synthetic import load_join_helper, load_synthetic
from repro.workloads.tpch import (
    TPCH_QUERIES,
    load_tpch,
    tpch_having_revenue,
    tpch_order_volume,
    tpch_q10,
    tpch_top_customers,
)


class TestSynthetic:
    def test_generation_is_deterministic(self):
        first = Database()
        second = Database()
        a = load_synthetic(first, num_rows=200, num_groups=10, seed=5)
        b = load_synthetic(second, num_rows=200, num_groups=10, seed=5)
        assert a.rows == b.rows
        assert len(first.table("r")) == 200

    def test_group_attribute_stays_in_range(self):
        database = Database()
        table = load_synthetic(database, num_rows=300, num_groups=7)
        assert all(0 <= row[1] < 7 for row in table.rows)
        assert len(table.group_values()) <= 7

    def test_schema_has_eleven_columns(self):
        database = Database()
        table = load_synthetic(database, num_rows=10, num_groups=2)
        assert len(table.columns) == 11
        assert database.schema_of("r").attributes[0] == "id"

    def test_inserts_extend_and_deletes_shrink(self):
        database = Database()
        table = load_synthetic(database, num_rows=100, num_groups=5)
        inserts = table.make_inserts(10)
        assert len(inserts) == 10
        assert len(table) == 110
        ids = {row[0] for row in table.rows}
        assert len(ids) == 110  # fresh ids, no collisions
        deletes = table.pick_deletes(20)
        assert len(deletes) == 20
        assert len(table) == 90

    def test_delete_smallest_groups(self):
        database = Database()
        table = load_synthetic(database, num_rows=200, num_groups=10)
        before_groups = sorted(table.group_values())
        victims = table.pick_deletes_from_smallest_groups(2)
        assert victims
        remaining_groups = table.group_values()
        assert before_groups[0] not in remaining_groups
        assert before_groups[1] not in remaining_groups

    def test_join_helper_selectivity(self):
        database = Database()
        load_synthetic(database, num_rows=100, num_groups=50)
        rows = load_join_helper(
            database, num_rows=400, join_selectivity=0.25, join_domain=50
        )
        inside = sum(1 for row in rows if row[1] < 50)
        assert 0.1 < inside / len(rows) < 0.4


class TestQueryTemplates:
    @pytest.fixture()
    def synthetic(self) -> Database:
        database = Database()
        load_synthetic(database, num_rows=500, num_groups=20, seed=9)
        load_join_helper(database, num_rows=200, join_domain=20)
        return database

    def test_all_single_table_templates_parse_and_run(self, synthetic):
        for sql in [
            q_having(1),
            q_having(3),
            q_having(10),
            q_groups(),
            q_selpd(),
            q_endtoend(),
            q_topk(k=5),
        ]:
            result = synthetic.query(sql)
            assert result.schema is not None

    def test_join_templates_run(self, synthetic):
        for sql in [q_join(), q_joinsel(), q_sketch()]:
            result = synthetic.query(sql)
            assert result.schema.attributes == ("a", "ab")

    def test_q_having_aggregate_count(self, synthetic):
        assert "avg" not in q_having(1).lower().split("having")[-1] if "having" in q_having(1).lower() else True
        assert q_having(3).lower().count("avg(") >= 3

    def test_q_having_requires_positive_count(self):
        with pytest.raises(ValueError):
            q_having(0)

    def test_q_topk_has_limit(self, synthetic):
        assert "LIMIT 5" in q_topk(k=5)
        assert len(synthetic.query(q_topk(k=5))) <= 5


class TestTPCH:
    @pytest.fixture(scope="class")
    def tpch_db(self):
        database = Database()
        data = load_tpch(database, scale=0.02, seed=3)
        return database, data

    def test_tables_and_ratios(self, tpch_db):
        database, data = tpch_db
        assert set(database.table_names()) == {"customer", "lineitem", "nation", "orders"}
        assert len(database.table("lineitem")) > len(database.table("orders"))
        assert len(database.table("orders")) > len(database.table("customer"))
        assert len(data.nations) == 25

    def test_generation_is_deterministic(self):
        first, second = Database(), Database()
        a = load_tpch(first, scale=0.01, seed=5)
        b = load_tpch(second, scale=0.01, seed=5)
        assert a.lineitems == b.lineitems

    def test_q10_runs_and_respects_limit(self, tpch_db):
        database, _data = tpch_db
        result = database.query(tpch_q10(k=5))
        assert len(result) <= 5

    def test_other_queries_run(self, tpch_db):
        database, _data = tpch_db
        assert database.query(tpch_having_revenue(1_000.0)) is not None
        assert database.query(tpch_order_volume(10.0)) is not None
        assert len(database.query(tpch_top_customers(3))) <= 3
        for sql in TPCH_QUERIES.values():
            assert database.query(sql) is not None

    def test_update_generators(self, tpch_db):
        _database, data = tpch_db
        before = len(data.lineitems)
        inserted = data.make_lineitem_inserts(10)
        assert len(inserted) == 10 and len(data.lineitems) == before + 10
        deleted = data.pick_lineitem_deletes(5)
        assert len(deleted) == 5
        orders, lineitems = data.make_order_inserts(3)
        assert len(orders) == 3 and len(lineitems) >= 3

    def test_imp_answers_q10_like_backend(self, tpch_db):
        database, _data = tpch_db
        system = IMPSystem(database, num_fragments=16)
        expected = sorted(database.query(tpch_q10(k=5)).rows())
        got = sorted(system.run_query(tpch_q10(k=5)).rows())
        assert got == expected


class TestCrimes:
    @pytest.fixture(scope="class")
    def crimes_db(self):
        database = Database()
        data = load_crimes(database, num_rows=5_000, seed=3)
        return database, data

    def test_schema_and_determinism(self, crimes_db):
        database, _data = crimes_db
        assert len(database.schema_of("crimes")) == 11
        other = Database()
        again = load_crimes(other, num_rows=100, seed=77)
        assert load_crimes(Database(), num_rows=100, seed=77).rows == again.rows

    def test_cq1_groups_by_beat_and_year(self, crimes_db):
        database, _data = crimes_db
        result = database.query(CRIMES_Q1)
        assert result.schema.attributes == ("beat", "year", "crime_count")
        assert len(result) > 100

    def test_cq2_threshold_filters_groups(self, crimes_db):
        database, _data = crimes_db
        all_areas = database.query(crimes_q2(0))
        busy_areas = database.query(crimes_q2(25))
        assert len(busy_areas) < len(all_areas)
        assert "1000" in CRIMES_Q2

    def test_update_generators(self, crimes_db):
        _database, data = crimes_db
        inserts = data.make_inserts(10)
        assert all(row[1] >= 2021 for row in inserts)
        deletes = data.pick_deletes(5)
        assert len(deletes) == 5


class TestMixedWorkload:
    def test_parse_ratio(self):
        assert parse_ratio("1U5Q") == (1, 5)
        assert parse_ratio("5u1q") == (5, 1)
        with pytest.raises(ValueError):
            parse_ratio("5x1y")

    def test_operation_mix_matches_ratio(self):
        database = Database()
        table = load_synthetic(database, num_rows=300, num_groups=10, seed=4)
        workload = MixedWorkload(
            table,
            query_factory=lambda rng: q_endtoend(),
            ratio="1U3Q",
            delta_size=4,
            num_operations=40,
        )
        operations = list(workload.operations())
        updates = [op for op in operations if op.kind == "update"]
        queries = [op for op in operations if op.kind == "query"]
        assert len(operations) == 40
        assert len(updates) == 10 and len(queries) == 30
        assert all(op.delta_size == 4 for op in updates)

    def test_runner_reports_consistent_counts(self):
        database = Database()
        table = load_synthetic(database, num_rows=300, num_groups=10, seed=4)
        workload = MixedWorkload(
            table,
            query_factory=lambda rng: q_endtoend(),
            ratio="1U1Q",
            delta_size=3,
            num_operations=10,
        )
        report = WorkloadRunner(NoSketchSystem(database)).run(workload)
        assert report.queries + report.updates == 10
        assert report.total_seconds > 0
        assert report.row()["system"] == "no-sketch"

    def test_same_operations_can_drive_multiple_systems(self):
        source = Database()
        table = load_synthetic(source, num_rows=400, num_groups=12, seed=6)
        workload = MixedWorkload(
            table,
            query_factory=lambda rng: q_endtoend(),
            ratio="1U2Q",
            delta_size=5,
            num_operations=12,
        )
        operations = list(workload.operations())
        results = []
        for kind in ("ns", "imp"):
            database = Database()
            load_synthetic(database, num_rows=400, num_groups=12, seed=6)
            system = (
                NoSketchSystem(database) if kind == "ns" else IMPSystem(database, num_fragments=12)
            )
            report = WorkloadRunner(system).run_operations(operations)
            results.append((kind, report, sorted(database.query(q_endtoend()).rows())))
        # After replaying identical operations both databases agree.
        assert results[0][2] == results[1][2]
