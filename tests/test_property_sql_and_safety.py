"""Property-based tests for the SQL frontend and sketch safety.

Two end-to-end invariants are exercised over randomly generated inputs:

* parse → template is total and stable on the supported query space, and
  queries that differ only in constants always share a template;
* for randomly chosen (safe) queries, partitions and database states, answering
  the query through a freshly captured sketch equals full evaluation (safety of
  accurate sketches), and any over-approximation of that sketch stays safe.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.capture import capture_sketch
from repro.sketch.selection import build_database_partition
from repro.sketch.use import instrument_plan
from repro.sql.parser import parse_select
from repro.sql.template import template_of
from repro.storage.database import Database

# --- random query generation -------------------------------------------------

COLUMNS = ["a", "b", "c"]
AGGREGATES = ["sum", "avg", "count", "min", "max"]
COMPARATORS = ["<", "<=", ">", ">=", "="]


@st.composite
def group_by_queries(draw) -> tuple[str, float]:
    """A GROUP BY / HAVING query over the synthetic table plus its threshold."""
    aggregate = draw(st.sampled_from(AGGREGATES))
    measure = draw(st.sampled_from(["b", "c"]))
    threshold = draw(st.integers(min_value=0, max_value=1200))
    having_aggregate = draw(st.sampled_from(AGGREGATES))
    having_measure = draw(st.sampled_from(["b", "c"]))
    comparator = draw(st.sampled_from(COMPARATORS))
    where = ""
    if draw(st.booleans()):
        where_column = draw(st.sampled_from(["b", "c"]))
        where_value = draw(st.integers(min_value=100, max_value=900))
        where = f" WHERE {where_column} < {where_value}"
    sql = (
        f"SELECT a, {aggregate}({measure}) AS m FROM r{where} GROUP BY a "
        f"HAVING {having_aggregate}({having_measure}) {comparator} {threshold}"
    )
    return sql, float(threshold)


class TestTemplateProperties:
    @given(group_by_queries())
    @settings(max_examples=60)
    def test_parse_and_template_are_total(self, query):
        sql, _threshold = query
        statement = parse_select(sql)
        template = template_of(statement)
        assert template.text
        # Templating is idempotent and deterministic.
        assert template == template_of(sql)

    @given(group_by_queries(), st.integers(min_value=0, max_value=5000))
    @settings(max_examples=60)
    def test_templates_ignore_constants(self, query, other_threshold):
        sql, threshold = query
        replaced = sql.replace(str(int(threshold)), str(other_threshold))
        assert template_of(sql) == template_of(replaced)

    @given(group_by_queries())
    @settings(max_examples=40)
    def test_different_group_by_changes_template(self, query):
        sql, _threshold = query
        changed = sql.replace("GROUP BY a", "GROUP BY b", 1)
        assert template_of(sql) != template_of(changed)


def _make_database(seed: int, num_rows: int, num_groups: int) -> Database:
    rng = random.Random(seed)
    database = Database()
    database.create_table("r", ["id", "a", "b", "c"], primary_key="id")
    database.insert(
        "r",
        [
            (i, rng.randrange(num_groups), rng.randrange(800), rng.randrange(1300))
            for i in range(num_rows)
        ],
    )
    return database


class TestSketchSafetyProperties:
    @given(
        query=group_by_queries(),
        seed=st.integers(min_value=0, max_value=10_000),
        fragments=st.integers(min_value=2, max_value=24),
    )
    @settings(max_examples=30, deadline=None)
    def test_accurate_sketches_are_safe(self, query, seed, fragments):
        sql, _threshold = query
        database = _make_database(seed, num_rows=300, num_groups=15)
        plan = database.plan(sql)
        # build_database_partition only partitions on safe attributes; for these
        # queries the group-by attribute ``a`` is always safe.
        partition = build_database_partition(database, plan, fragments)
        sketch = capture_sketch(plan, partition, database)
        through_sketch = database.query(instrument_plan(plan, sketch))
        assert through_sketch == database.query(plan)

    @given(
        query=group_by_queries(),
        seed=st.integers(min_value=0, max_value=10_000),
        extra_fragments=st.sets(st.integers(min_value=0, max_value=7), max_size=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_overapproximated_sketches_stay_safe(self, query, seed, extra_fragments):
        sql, _threshold = query
        database = _make_database(seed, num_rows=250, num_groups=12)
        plan = database.plan(sql)
        partition = build_database_partition(database, plan, 8)
        sketch = capture_sketch(plan, partition, database)
        widened = sketch.copy()
        for fragment in extra_fragments:
            if fragment < partition.total_fragments:
                widened.add(fragment)
        # Any over-approximation of a safe sketch is safe (Niu et al. [37]).
        assert database.query(instrument_plan(plan, widened)) == database.query(plan)
