"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_maintain_defaults(self):
        args = build_parser().parse_args(["maintain"])
        assert args.query == "groups"
        assert args.delta == 100
        assert not args.no_bloom


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        output = capsys.readouterr().out
        assert "repro.imp" in output
        assert "repro.sketch" in output

    def test_demo_runs_the_running_example(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        assert "Apple" in output
        assert "HP" in output

    def test_maintain_reports_speedups(self, capsys):
        exit_code = main(
            [
                "maintain",
                "--query",
                "groups",
                "--rows",
                "800",
                "--groups",
                "40",
                "--delta",
                "20",
                "--batches",
                "2",
                "--fragments",
                "16",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "IMP (ms)" in output
        assert "speedup" in output
        assert "backend round trips" in output

    def test_maintain_with_optimizations_disabled(self, capsys):
        exit_code = main(
            [
                "maintain",
                "--query",
                "joinsel",
                "--rows",
                "600",
                "--groups",
                "30",
                "--delta",
                "10",
                "--batches",
                "1",
                "--fragments",
                "8",
                "--no-bloom",
                "--no-pushdown",
            ]
        )
        assert exit_code == 0
        assert "statistics" in capsys.readouterr().out

    def test_compare_runs_all_three_systems(self, capsys):
        exit_code = main(
            [
                "compare",
                "--rows",
                "600",
                "--groups",
                "30",
                "--operations",
                "9",
                "--ratio",
                "1U2Q",
                "--delta",
                "5",
                "--fragments",
                "16",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "no-sketch" in output
        assert "full-maintenance" in output
        assert "fastest system" in output

    def test_serve_repl_snapshot_isolation(self, capsys, monkeypatch):
        """The REPL pins sessions: a commit is invisible until .refresh."""
        import io

        script = "\n".join(
            [
                ".open",
                "SELECT COUNT(id) AS n FROM r",
                ".commit 25",
                "SELECT COUNT(id) AS n FROM r",
                ".refresh",
                "SELECT COUNT(id) AS n FROM r",
                ".sessions",
                ".close",
                ".quit",
                "",
            ]
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(script))
        assert main(["serve", "--rows", "300", "--groups", "10"]) == 0
        output = capsys.readouterr().out
        assert "opened session 1 pinned at version 1" in output
        # Pinned before and after the commit, then refreshed.
        assert output.count("(300,)") == 2
        assert "(325,)" in output
        assert "closed session 1" in output

    def test_serve_repl_surfaces_errors_without_dying(self, capsys, monkeypatch):
        import io

        script = ".open\nSELECT nope FROM missing\n.bogus\n.quit\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(script))
        assert main(["serve", "--rows", "100", "--groups", "5"]) == 0
        output = capsys.readouterr().out
        assert "error:" in output
        assert "unknown command" in output

    def test_serve_demo_reports_stable_snapshots(self, capsys):
        exit_code = main(
            [
                "serve",
                "--demo",
                "--rows",
                "400",
                "--groups",
                "15",
                "--readers",
                "2",
                "--commits",
                "3",
                "--delta",
                "10",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "snapshot stability: OK" in output
        assert "maintenance:" in output
