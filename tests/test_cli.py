"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_maintain_defaults(self):
        args = build_parser().parse_args(["maintain"])
        assert args.query == "groups"
        assert args.delta == 100
        assert not args.no_bloom


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        output = capsys.readouterr().out
        assert "repro.imp" in output
        assert "repro.sketch" in output

    def test_demo_runs_the_running_example(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        assert "Apple" in output
        assert "HP" in output

    def test_maintain_reports_speedups(self, capsys):
        exit_code = main(
            [
                "maintain",
                "--query",
                "groups",
                "--rows",
                "800",
                "--groups",
                "40",
                "--delta",
                "20",
                "--batches",
                "2",
                "--fragments",
                "16",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "IMP (ms)" in output
        assert "speedup" in output
        assert "backend round trips" in output

    def test_maintain_with_optimizations_disabled(self, capsys):
        exit_code = main(
            [
                "maintain",
                "--query",
                "joinsel",
                "--rows",
                "600",
                "--groups",
                "30",
                "--delta",
                "10",
                "--batches",
                "1",
                "--fragments",
                "8",
                "--no-bloom",
                "--no-pushdown",
            ]
        )
        assert exit_code == 0
        assert "statistics" in capsys.readouterr().out

    def test_compare_runs_all_three_systems(self, capsys):
        exit_code = main(
            [
                "compare",
                "--rows",
                "600",
                "--groups",
                "30",
                "--operations",
                "9",
                "--ratio",
                "1U2Q",
                "--delta",
                "5",
                "--fragments",
                "16",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "no-sketch" in output
        assert "full-maintenance" in output
        assert "fastest system" in output

    def test_serve_repl_snapshot_isolation(self, capsys, monkeypatch):
        """The REPL pins sessions: a commit is invisible until .refresh."""
        import io

        script = "\n".join(
            [
                ".open",
                "SELECT COUNT(id) AS n FROM r",
                ".commit 25",
                "SELECT COUNT(id) AS n FROM r",
                ".refresh",
                "SELECT COUNT(id) AS n FROM r",
                ".sessions",
                ".close",
                ".quit",
                "",
            ]
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(script))
        assert main(["serve", "--rows", "300", "--groups", "10"]) == 0
        output = capsys.readouterr().out
        assert "opened session 1 pinned at version 1" in output
        # Pinned before and after the commit, then refreshed.
        assert output.count("(300,)") == 2
        assert "(325,)" in output
        assert "closed session 1" in output

    def test_serve_repl_surfaces_errors_without_dying(self, capsys, monkeypatch):
        import io

        script = ".open\nSELECT nope FROM missing\n.bogus\n.quit\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(script))
        assert main(["serve", "--rows", "100", "--groups", "5"]) == 0
        output = capsys.readouterr().out
        assert "error:" in output
        assert "unknown command" in output

    def test_serve_demo_reports_stable_snapshots(self, capsys):
        exit_code = main(
            [
                "serve",
                "--demo",
                "--rows",
                "400",
                "--groups",
                "15",
                "--readers",
                "2",
                "--commits",
                "3",
                "--delta",
                "10",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "snapshot stability: OK" in output
        assert "maintenance:" in output


class TestDurableServing:
    def _serve(self, monkeypatch, data_dir, script_lines, extra_args=()):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join([*script_lines, ""])))
        return main(
            [
                "serve",
                "--rows",
                "120",
                "--groups",
                "8",
                "--data-dir",
                str(data_dir),
                *extra_args,
            ]
        )

    def test_serve_data_dir_persists_across_runs(self, capsys, monkeypatch, tmp_path):
        data_dir = tmp_path / "serving"
        script = [
            ".open",
            "SELECT COUNT(id) AS n FROM r",
            ".commit 30",
            ".checkpoint",
            ".quit",
        ]
        assert self._serve(monkeypatch, data_dir, script) == 0
        first = capsys.readouterr().out
        assert "durable: " in first
        assert "(120,)" in first
        assert "checkpoint written at version 2" in first

        # A second run recovers the directory instead of reloading synthetic
        # data: the committed rows are still there.
        script = [".open", "SELECT COUNT(id) AS n FROM r", ".quit"]
        assert self._serve(monkeypatch, data_dir, script) == 0
        second = capsys.readouterr().out
        assert "recovered existing data directory:" in second
        assert "(150,)" in second
        assert "table r with 150 rows at version 2" in second

    def test_serve_accepts_fsync_policy(self, capsys, monkeypatch, tmp_path):
        script = [".commit 5", ".quit"]
        code = self._serve(
            monkeypatch,
            tmp_path / "d",
            script,
            extra_args=["--fsync", "off", "--checkpoint-every", "1"],
        )
        assert code == 0
        assert "committed 5 rows" in capsys.readouterr().out
        # --checkpoint-every wrote checkpoints without an explicit command.
        assert any(
            p.name.startswith("checkpoint-") for p in (tmp_path / "d").iterdir()
        )

    def test_checkpoint_requires_durable_serving(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(".checkpoint\n.quit\n"))
        assert main(["serve", "--rows", "50", "--groups", "5"]) == 0
        assert "error:" in capsys.readouterr().out

    def test_recover_reports_integrity(self, capsys, monkeypatch, tmp_path):
        data_dir = tmp_path / "serving"
        script = [".commit 10", ".checkpoint", ".commit 7", ".quit"]
        assert self._serve(monkeypatch, data_dir, script) == 0
        capsys.readouterr()

        assert main(["recover", str(data_dir)]) == 0
        output = capsys.readouterr().out
        assert "recovery report:" in output
        assert "checkpoint-000000000002.ckpt" in output
        assert "1 commits + 0 DDL replayed" in output
        assert "table r: 137 rows" in output
        assert "integrity: OK (version 3)" in output
        assert "sha256=" in output

    def test_recover_truncates_a_torn_tail(self, capsys, monkeypatch, tmp_path):
        data_dir = tmp_path / "serving"
        assert self._serve(monkeypatch, data_dir, [".commit 5", ".quit"]) == 0
        capsys.readouterr()
        with open(data_dir / "wal.log", "ab") as handle:
            handle.write(b"\xde\xad\xbe\xef half a record")
        assert main(["recover", str(data_dir)]) == 0
        output = capsys.readouterr().out
        assert "torn tail truncated: 18 bytes" in output
        assert "integrity: OK (version 2)" in output

    def test_recover_missing_directory_fails(self, capsys, tmp_path):
        assert main(["recover", str(tmp_path / "nope")]) == 1
        assert "no such data directory" in capsys.readouterr().out

    def test_recover_rejects_garbage(self, capsys, tmp_path):
        data_dir = tmp_path / "bad"
        data_dir.mkdir()
        (data_dir / "wal.log").write_bytes(b"certainly not a log file")
        assert main(["recover", str(data_dir)]) == 1
        assert "recovery failed:" in capsys.readouterr().out
