"""Regression tests for multi-way join maintenance with correlated deltas.

These cover the scenario that surfaced a real bug during development: rows
inserted into *both* sides of a join within the same maintenance batch join
with each other (new orders arriving together with their lineitems).  The
Bloom-filter optimization must not prune such delta tuples, otherwise the
maintained sketch loses fragments and stops being an over-approximation.
"""

import pytest

from repro.imp.engine import IMPConfig, IncrementalEngine
from repro.imp.maintenance import IncrementalMaintainer
from repro.sketch.capture import capture_sketch
from repro.sketch.selection import build_database_partition
from repro.sketch.use import instrument_plan
from repro.storage.database import Database
from repro.workloads.tpch import load_tpch, tpch_having_revenue, tpch_q10


def _assert_superset_and_safe(database, plan, partition, sketch):
    accurate = capture_sketch(plan, partition, database)
    assert set(sketch.fragment_ids()) >= set(accurate.fragment_ids())
    through_sketch = database.query(instrument_plan(plan, sketch))
    assert through_sketch == database.query(plan)


@pytest.mark.parametrize("use_bloom", [True, False])
def test_correlated_inserts_on_both_join_sides(use_bloom):
    """New orders arrive together with their lineitems in every batch."""
    database = Database()
    data = load_tpch(database, scale=0.03, seed=13)
    sql = tpch_having_revenue(threshold=30_000.0)
    plan = database.plan(sql)
    partition = build_database_partition(database, plan, 48)
    engine = IncrementalEngine(
        plan, partition, database, IMPConfig(use_bloom_filters=use_bloom)
    )
    sketch = engine.initialize()
    for _batch in range(4):
        version = database.version
        deletes = data.pick_lineitem_deletes(30)
        if deletes:
            database.delete_rows("lineitem", deletes)
        new_orders, new_lineitems = data.make_order_inserts(30)
        database.insert("orders", new_orders)
        database.insert("lineitem", new_lineitems + data.make_lineitem_inserts(60))
        outcome = engine.maintain(
            database.database_delta_since(plan.referenced_tables(), version)
        )
        assert not outcome.needs_recapture
        sketch = sketch.apply_delta(outcome.sketch_delta)
        _assert_superset_and_safe(database, plan, partition, sketch)


def test_topk_over_multiway_join_stays_safe():
    """The Q10-style top-k query stays safe across correlated update batches."""
    database = Database()
    data = load_tpch(database, scale=0.03, seed=17)
    sql = tpch_q10(k=10)
    plan = database.plan(sql)
    partition = build_database_partition(database, plan, 48)
    maintainer = IncrementalMaintainer(database, plan, partition)
    maintainer.capture()
    for _batch in range(3):
        deletes = data.pick_lineitem_deletes(20)
        if deletes:
            database.delete_rows("lineitem", deletes)
        new_orders, new_lineitems = data.make_order_inserts(25)
        database.insert("orders", new_orders)
        database.insert("lineitem", new_lineitems)
        result = maintainer.maintain()
        _assert_superset_and_safe(database, plan, partition, result.sketch)


def test_middleware_multiway_join_consistency_with_indexes():
    """Through the middleware (indexes + sketch reuse) the answers keep
    matching plain evaluation while orders and lineitems churn."""
    from repro.imp.middleware import IMPSystem

    database = Database()
    data = load_tpch(database, scale=0.03, seed=19)
    system = IMPSystem(database, num_fragments=48)
    sql = tpch_having_revenue(threshold=30_000.0)
    assert sorted(system.run_query(sql).rows()) == sorted(database.query(sql).rows())
    for _batch in range(3):
        new_orders, new_lineitems = data.make_order_inserts(20)
        system.apply_update("orders", new_orders)
        system.apply_update("lineitem", new_lineitems)
        assert sorted(system.run_query(sql).rows()) == sorted(database.query(sql).rows())
