"""Tests for :mod:`repro.core.bitset`."""

import pytest

from repro.core.bitset import BitSet


class TestConstruction:
    def test_empty_bitset_has_no_members(self):
        assert len(BitSet()) == 0
        assert not BitSet()

    def test_construction_from_members(self):
        bits = BitSet([1, 5, 9])
        assert sorted(bits) == [1, 5, 9]

    def test_from_mask(self):
        bits = BitSet.from_mask(0b1011)
        assert sorted(bits) == [0, 1, 3]

    def test_from_mask_rejects_negative(self):
        with pytest.raises(ValueError):
            BitSet.from_mask(-1)

    def test_copy_is_independent(self):
        original = BitSet([1, 2])
        clone = original.copy()
        clone.add(7)
        assert 7 not in original
        assert 7 in clone


class TestMembership:
    def test_add_and_contains(self):
        bits = BitSet()
        bits.add(42)
        assert 42 in bits
        assert 41 not in bits

    def test_add_negative_raises(self):
        with pytest.raises(ValueError):
            BitSet().add(-3)

    def test_discard_removes_member(self):
        bits = BitSet([3, 4])
        bits.discard(3)
        assert 3 not in bits
        assert 4 in bits

    def test_discard_missing_is_noop(self):
        bits = BitSet([1])
        bits.discard(100)
        assert sorted(bits) == [1]

    def test_negative_membership_is_false(self):
        assert -1 not in BitSet([0, 1])

    def test_large_indices(self):
        bits = BitSet([100_000])
        assert 100_000 in bits
        assert bits.max_bit() == 100_000


class TestSetAlgebra:
    def test_union(self):
        assert sorted(BitSet([1, 2]) | BitSet([2, 3])) == [1, 2, 3]

    def test_intersection(self):
        assert sorted(BitSet([1, 2, 5]) & BitSet([2, 5, 9])) == [2, 5]

    def test_difference(self):
        assert sorted(BitSet([1, 2, 3]) - BitSet([2])) == [1, 3]

    def test_update_in_place(self):
        bits = BitSet([1])
        bits.update(BitSet([8]))
        assert sorted(bits) == [1, 8]

    def test_subset_and_superset(self):
        small, big = BitSet([1, 2]), BitSet([1, 2, 3])
        assert small.issubset(big)
        assert big.issuperset(small)
        assert not big.issubset(small)

    def test_equality_and_hash(self):
        assert BitSet([1, 2]) == BitSet([2, 1])
        assert hash(BitSet([4])) == hash(BitSet([4]))
        assert BitSet([1]) != BitSet([2])


class TestInspection:
    def test_len_counts_members(self):
        assert len(BitSet([0, 7, 31, 64])) == 4

    def test_iteration_is_sorted(self):
        assert list(BitSet([9, 1, 5])) == [1, 5, 9]

    def test_max_bit_of_empty_is_minus_one(self):
        assert BitSet().max_bit() == -1

    def test_to_list(self):
        assert BitSet([3, 1]).to_list() == [1, 3]

    def test_byte_size_grows_with_highest_bit(self):
        small = BitSet([1]).byte_size()
        large = BitSet([10_000]).byte_size()
        assert large > small

    def test_byte_size_of_empty_is_small(self):
        # A sketch is hundreds of bytes at most for realistic partitions.
        assert BitSet().byte_size() <= 16
