"""Property-based tests for relations, deltas and range partitions."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.schema import Relation, Schema
from repro.sketch.ranges import RangePartition
from repro.storage.delta import Delta

SCHEMA = Schema(["a", "b"])

rows = st.tuples(st.integers(0, 20), st.integers(0, 20))
bags = st.dictionaries(rows, st.integers(min_value=1, max_value=4), max_size=25)


def relation_of(bag: dict) -> Relation:
    return Relation(SCHEMA, bag)


class TestRelationProperties:
    @given(bags, bags)
    def test_union_is_commutative(self, a, b):
        assert relation_of(a).union(relation_of(b)) == relation_of(b).union(relation_of(a))

    @given(bags, bags)
    def test_union_cardinality_adds(self, a, b):
        combined = relation_of(a).union(relation_of(b))
        assert len(combined) == len(relation_of(a)) + len(relation_of(b))

    @given(bags, bags)
    def test_difference_never_negative(self, a, b):
        result = relation_of(a).difference(relation_of(b))
        assert all(multiplicity > 0 for _row, multiplicity in result.items())

    @given(bags)
    def test_difference_with_self_is_empty(self, a):
        assert len(relation_of(a).difference(relation_of(a))) == 0


class TestDeltaProperties:
    @given(bags, bags)
    @settings(max_examples=60)
    def test_delta_between_then_apply_roundtrips(self, old_bag, new_bag):
        old = relation_of(old_bag)
        new = relation_of(new_bag)
        delta = Delta.between(old, new)
        assert delta.apply_to(old) == new

    @given(bags)
    def test_delta_between_identical_states_is_empty(self, bag):
        assert not Delta.between(relation_of(bag), relation_of(bag))

    @given(bags, bags)
    def test_delta_size_bounds_symmetric_difference(self, old_bag, new_bag):
        old = relation_of(old_bag)
        new = relation_of(new_bag)
        delta = Delta.between(old, new)
        assert len(delta) <= len(old) + len(new)


boundary_lists = st.lists(
    st.integers(min_value=-1000, max_value=1000), min_size=2, max_size=12
).map(sorted).filter(lambda values: values[0] < values[-1])


class TestRangePartitionProperties:
    @given(boundary_lists, st.integers(min_value=-1000, max_value=1000))
    @settings(max_examples=80)
    def test_every_in_domain_value_has_exactly_one_fragment(self, boundaries, value):
        partition = RangePartition("t", "a", boundaries)
        low, high = partition.boundaries[0], partition.boundaries[-1]
        if not low <= value <= high:
            return
        index = partition.fragment_of(value)
        matching = [r.index for r in partition.ranges() if r.contains(value)]
        assert matching == [index]

    @given(boundary_lists)
    def test_fragments_cover_domain_without_overlap(self, boundaries):
        partition = RangePartition("t", "a", boundaries)
        ranges = list(partition.ranges())
        for first, second in zip(ranges, ranges[1:]):
            assert first.high == second.low
        assert ranges[0].low == partition.boundaries[0]
        assert ranges[-1].high == partition.boundaries[-1]

    @given(boundary_lists)
    def test_boundary_count_matches_fragment_count(self, boundaries):
        partition = RangePartition("t", "a", boundaries)
        assert len(partition.boundaries) == partition.num_fragments + 1
