"""Property-based tests for relations, deltas, range partitions and the
compiled-expression layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.expressions import (
    Between,
    BinaryOp,
    ColumnRef,
    Comparison,
    FunctionCall,
    IsNull,
    Literal,
    LogicalOp,
    Not,
    UnaryMinus,
)
from repro.relational.schema import Relation, Schema
from repro.sketch.ranges import RangePartition
from repro.storage.delta import Delta

SCHEMA = Schema(["a", "b"])

rows = st.tuples(st.integers(0, 20), st.integers(0, 20))
bags = st.dictionaries(rows, st.integers(min_value=1, max_value=4), max_size=25)


def relation_of(bag: dict) -> Relation:
    return Relation(SCHEMA, bag)


class TestRelationProperties:
    @given(bags, bags)
    def test_union_is_commutative(self, a, b):
        assert relation_of(a).union(relation_of(b)) == relation_of(b).union(relation_of(a))

    @given(bags, bags)
    def test_union_cardinality_adds(self, a, b):
        combined = relation_of(a).union(relation_of(b))
        assert len(combined) == len(relation_of(a)) + len(relation_of(b))

    @given(bags, bags)
    def test_difference_never_negative(self, a, b):
        result = relation_of(a).difference(relation_of(b))
        assert all(multiplicity > 0 for _row, multiplicity in result.items())

    @given(bags)
    def test_difference_with_self_is_empty(self, a):
        assert len(relation_of(a).difference(relation_of(a))) == 0


class TestDeltaProperties:
    @given(bags, bags)
    @settings(max_examples=60)
    def test_delta_between_then_apply_roundtrips(self, old_bag, new_bag):
        old = relation_of(old_bag)
        new = relation_of(new_bag)
        delta = Delta.between(old, new)
        assert delta.apply_to(old) == new

    @given(bags)
    def test_delta_between_identical_states_is_empty(self, bag):
        assert not Delta.between(relation_of(bag), relation_of(bag))

    @given(bags, bags)
    def test_delta_size_bounds_symmetric_difference(self, old_bag, new_bag):
        old = relation_of(old_bag)
        new = relation_of(new_bag)
        delta = Delta.between(old, new)
        assert len(delta) <= len(old) + len(new)


# -- compiled expressions ------------------------------------------------------

EXPR_SCHEMA = Schema(["a", "b", "c"])

expr_rows = st.tuples(
    *(st.one_of(st.none(), st.integers(-50, 50)) for _ in range(3))
)

numeric_leaves = st.one_of(
    st.sampled_from(["a", "b", "c"]).map(ColumnRef),
    st.integers(-20, 20).map(Literal),
    st.just(Literal(None)),
)

numeric_exprs = st.recursive(
    numeric_leaves,
    lambda children: st.one_of(
        st.tuples(st.sampled_from("+-*/%"), children, children).map(
            lambda t: BinaryOp(t[0], t[1], t[2])
        ),
        children.map(UnaryMinus),
        children.map(lambda e: FunctionCall("abs", [e])),
        st.tuples(children, children).map(
            lambda t: FunctionCall("coalesce", [t[0], t[1]])
        ),
    ),
    max_leaves=8,
)

predicate_exprs = st.recursive(
    st.one_of(
        st.tuples(
            st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
            numeric_exprs,
            numeric_exprs,
        ).map(lambda t: Comparison(t[0], t[1], t[2])),
        st.tuples(numeric_exprs, numeric_exprs, numeric_exprs).map(
            lambda t: Between(t[0], t[1], t[2])
        ),
        st.tuples(numeric_exprs, st.booleans()).map(lambda t: IsNull(t[0], t[1])),
    ),
    lambda children: st.one_of(
        children.map(Not),
        st.tuples(
            st.sampled_from(["AND", "OR"]),
            st.lists(children, min_size=1, max_size=3),
        ).map(lambda t: LogicalOp(t[0], t[1])),
    ),
    max_leaves=6,
)


class TestCompiledExpressionProperties:
    @given(expression=numeric_exprs, row=expr_rows)
    @settings(max_examples=200)
    def test_compiled_numeric_matches_interpreted(self, expression, row):
        interpreted = expression.evaluate(row, EXPR_SCHEMA)
        compiled = expression.compile(EXPR_SCHEMA)(row)
        assert compiled == interpreted

    @given(expression=predicate_exprs, row=expr_rows)
    @settings(max_examples=200)
    def test_compiled_predicate_matches_interpreted(self, expression, row):
        interpreted = expression.evaluate(row, EXPR_SCHEMA)
        compiled = expression.compile(EXPR_SCHEMA)(row)
        assert compiled is interpreted or compiled == interpreted


boundary_lists = st.lists(
    st.integers(min_value=-1000, max_value=1000), min_size=2, max_size=12
).map(sorted).filter(lambda values: values[0] < values[-1])


class TestRangePartitionProperties:
    @given(boundary_lists, st.integers(min_value=-1000, max_value=1000))
    @settings(max_examples=80)
    def test_every_in_domain_value_has_exactly_one_fragment(self, boundaries, value):
        partition = RangePartition("t", "a", boundaries)
        low, high = partition.boundaries[0], partition.boundaries[-1]
        if not low <= value <= high:
            return
        index = partition.fragment_of(value)
        matching = [r.index for r in partition.ranges() if r.contains(value)]
        assert matching == [index]

    @given(boundary_lists)
    def test_fragments_cover_domain_without_overlap(self, boundaries):
        partition = RangePartition("t", "a", boundaries)
        ranges = list(partition.ranges())
        for first, second in zip(ranges, ranges[1:]):
            assert first.high == second.low
        assert ranges[0].low == partition.boundaries[0]
        assert ranges[-1].high == partition.boundaries[-1]

    @given(boundary_lists)
    def test_boundary_count_matches_fragment_count(self, boundaries):
        partition = RangePartition("t", "a", boundaries)
        assert len(partition.boundaries) == partition.num_fragments + 1
