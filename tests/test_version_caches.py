"""Property sweep: per-version caches never serve stale data.

The database caches three things per version: the columnar batch of each
table (``column_batch``), per-column summary statistics
(``column_statistics``) and equi-depth histogram boundaries
(``equi_depth_ranges``).  Before this sweep they were only exercised
incidentally; here Hypothesis drives random commit / failed-commit (rollback)
/ drop / recreate sequences and after *every* operation each cached answer is
compared against a from-scratch recomputation over the live table state.
Snapshot caches are exercised too: a session pinned mid-sequence must keep
answering from its version while the caches underneath it churn.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import StorageError
from repro.relational.columnar import ColumnBatch
from repro.storage.database import Database
from repro.storage.statistics import collect_column_statistics, equi_depth_boundaries

COLUMNS = ["id", "a", "b"]
ATTRIBUTES = ["a", "b"]

value_strategy = st.one_of(
    st.integers(min_value=-50, max_value=50),
    st.floats(min_value=-100, max_value=100, allow_nan=False, width=32),
    st.none(),
)

operation_strategy = st.one_of(
    st.tuples(st.just("insert"), st.lists(st.tuples(value_strategy, value_strategy), min_size=1, max_size=5)),
    st.tuples(st.just("delete"), st.integers(min_value=0, max_value=10**6)),
    st.tuples(st.just("failed-insert"), st.tuples(value_strategy, value_strategy)),
    st.tuples(st.just("failed-delete"), st.just(None)),
    st.tuples(st.just("drop-recreate"), st.just(None)),
    st.tuples(st.just("empty-commit"), st.just(None)),
)


def fresh_batch(database: Database, table: str) -> list[tuple]:
    stored = database.table(table)
    return sorted(
        (row, multiplicity) for row, multiplicity in stored.items()
    )


def batch_rows(batch: ColumnBatch) -> list[tuple]:
    rows = batch.row_tuples()
    return sorted(zip(rows, batch.multiplicities))


def assert_caches_fresh(database: Database, table: str) -> None:
    """Every cached per-version structure equals a from-scratch recompute."""
    stored = database.table(table)
    # column_batch: cached pivot vs live rows.
    assert batch_rows(database.column_batch(table)) == fresh_batch(database, table)
    for attribute in ATTRIBUTES:
        index = stored.schema.index_of(attribute)
        values = [row[index] for row in stored.rows()]
        cached = database.column_statistics(table, attribute)
        expected = collect_column_statistics(attribute, values)
        assert cached == expected, f"stale column_statistics for {attribute}"
        non_null = sorted(float(v) for v in values if v is not None)
        if non_null:
            assert database.equi_depth_ranges(table, attribute, 4) == (
                equi_depth_boundaries(non_null, 4)
            ), f"stale equi_depth_ranges for {attribute}"


@settings(max_examples=60, deadline=None)
@given(operations=st.lists(operation_strategy, min_size=1, max_size=12))
def test_version_caches_never_stale(operations):
    database = Database()
    database.create_table("t", COLUMNS, primary_key="id")
    next_id = 0
    live_rows: list[tuple] = []
    pinned_session = None
    pinned_expectation = None

    # Warm every cache once so the sweep exercises invalidation, not cold fills.
    database.insert("t", [(next_id, 1, 2.0)])
    live_rows.append((next_id, 1, 2.0))
    next_id += 1
    assert_caches_fresh(database, "t")

    for position, (kind, payload) in enumerate(operations):
        if kind == "insert":
            rows = []
            for a, b in payload:
                rows.append((next_id, a, b))
                next_id += 1
            database.insert("t", rows)
            live_rows.extend(rows)
        elif kind == "delete":
            if live_rows:
                victim = live_rows.pop(payload % len(live_rows))
                database.delete_rows("t", [victim])
        elif kind == "failed-insert":
            if live_rows:
                taken_id = live_rows[0][0]
                clash = (taken_id, *payload)
                if clash != live_rows[0]:
                    before = fresh_batch(database, "t")
                    with pytest.raises(StorageError):
                        # Second row reuses a held primary key: validation
                        # must reject the whole batch atomically (rollback).
                        database.insert("t", [(next_id, 0, 0.0), clash])
                    assert fresh_batch(database, "t") == before
        elif kind == "failed-delete":
            before = fresh_batch(database, "t")
            with pytest.raises(StorageError):
                database.delete_rows("t", [(next_id + 10**6, None, None)])
            assert fresh_batch(database, "t") == before
        elif kind == "drop-recreate":
            if pinned_session is not None:
                pinned_session.close()
                pinned_session = None
            database.drop_table("t")
            database.create_table("t", COLUMNS, primary_key="id")
            live_rows = []
        elif kind == "empty-commit":
            version = database.version
            assert database.insert("t", []) == version

        # Mid-sequence, pin one session and keep checking it reads its version.
        if pinned_session is None and kind == "insert":
            pinned_session = database.connect()
            pinned_expectation = sorted(
                pinned_session.query("SELECT id, a, b FROM t").rows()
            )
        if pinned_session is not None:
            assert (
                sorted(pinned_session.query("SELECT id, a, b FROM t").rows())
                == pinned_expectation
            ), f"pinned snapshot drifted after op {position}: {kind}"

        assert_caches_fresh(database, "t")

    if pinned_session is not None:
        pinned_session.close()


@settings(max_examples=25, deadline=None)
@given(
    batches=st.lists(
        st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=6),
        min_size=1,
        max_size=6,
    )
)
def test_snapshot_batches_match_reconstruction(batches):
    """Every historical version's snapshot equals an independent replay.

    Materialization order must not matter: version k's batch is compared
    against a database that stopped at version k, whether the snapshot is
    materialized before or after later commits land.
    """
    database = Database()
    database.create_table("t", ["id", "v"])
    replays = [Database() for _ in batches]
    for replay in replays:
        replay.create_table("t", ["id", "v"])

    next_id = 0
    for index, batch in enumerate(batches):
        rows = []
        for value in batch:
            rows.append((next_id, value))
            next_id += 1
        database.insert("t", rows)
        for replay in replays[index:]:
            replay.insert("t", rows)

    for version, replay in enumerate(replays, start=1):
        snapshot = database.snapshot_batch("t", version)
        expected = replay.snapshot_batch("t", replay.version)
        assert batch_rows(snapshot) == batch_rows(expected)
        # Bit-identical, not just bag-equal: canonical order is part of the
        # snapshot contract (float aggregates accumulate in batch order).
        assert snapshot.row_tuples() == expected.row_tuples()
        assert snapshot.multiplicities == expected.multiplicities


def test_snapshot_canonical_order_is_total_with_nan():
    """NaN values must not break the canonical order: the rollback and
    direct materialization paths agree even though NaN defeats sorted()'s
    comparisons (regression for the order-key NaN flag)."""
    nan = float("nan")
    rows = [(1, nan), (2, 1.0), (3, nan), (4, -5.0)]

    direct = Database()
    direct.create_table("t", ["id", "v"])
    direct.insert("t", rows)
    direct_batch = direct.snapshot_batch("t", 1)  # effective == last modified

    replayed = Database()
    replayed.create_table("t", ["id", "v"])
    replayed.insert("t", rows)
    replayed.insert("t", [(5, 2.0)])
    rolled_batch = replayed.snapshot_batch("t", 1)  # rollback path

    def fingerprint(batch):
        return [tuple(repr(value) for value in row) for row in batch.row_tuples()]

    assert fingerprint(rolled_batch) == fingerprint(direct_batch)
    assert rolled_batch.multiplicities == direct_batch.multiplicities
