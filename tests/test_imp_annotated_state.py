"""Tests for annotated deltas and incremental operator state."""

import pytest

from repro.core.bitset import BitSet
from repro.core.errors import StateError
from repro.relational.algebra import AggregateFunction
from repro.relational.schema import Schema
from repro.imp.annotated import AnnotatedDelta, AnnotatedDeltaTuple
from repro.imp.state import (
    AggregationState,
    CountStarAccumulator,
    GroupState,
    MergeState,
    MinMaxAccumulator,
    SumCountAccumulator,
    TopKState,
    make_accumulator,
)

SCHEMA = Schema(["a", "b"])


class TestAnnotatedDelta:
    def test_add_and_counts(self):
        delta = AnnotatedDelta(SCHEMA)
        delta.add_insert((1, 2), BitSet([0]), 2)
        delta.add_delete((3, 4), BitSet([1]))
        assert delta.insert_count == 2
        assert delta.delete_count == 1
        assert len(delta) == 3

    def test_duplicate_entries_merge(self):
        delta = AnnotatedDelta(SCHEMA)
        delta.add_insert((1, 2), BitSet([0]))
        delta.add_insert((1, 2), BitSet([0]), 3)
        assert len(list(delta.tuples())) == 1
        assert next(delta.inserts()).multiplicity == 4

    def test_same_row_different_annotation_stays_distinct(self):
        delta = AnnotatedDelta(SCHEMA)
        delta.add_insert((1, 2), BitSet([0]))
        delta.add_insert((1, 2), BitSet([1]))
        assert len(list(delta.tuples())) == 2

    def test_invalid_sign_rejected(self):
        with pytest.raises(ValueError):
            AnnotatedDelta(SCHEMA).add(0, (1, 2), BitSet())

    def test_zero_multiplicity_ignored(self):
        delta = AnnotatedDelta(SCHEMA)
        delta.add_insert((1, 2), BitSet(), 0)
        assert not delta

    def test_signed_entries_cancel(self):
        delta = AnnotatedDelta(SCHEMA)
        delta.add_insert((1, 2), BitSet([0]), 2)
        delta.add_delete((1, 2), BitSet([0]), 2)
        assert delta.signed_entries() == {}

    def test_from_signed_roundtrip(self):
        entries = {((1, 2), BitSet([0])): 2, ((3, 4), BitSet([1])): -1}
        delta = AnnotatedDelta.from_signed(SCHEMA, entries)
        assert delta.insert_count == 2
        assert delta.delete_count == 1

    def test_add_signed(self):
        delta = AnnotatedDelta(SCHEMA)
        delta.add_signed((1, 2), BitSet(), 3)
        delta.add_signed((1, 2), BitSet(), -1)
        delta.add_signed((1, 2), BitSet(), 0)
        assert delta.insert_count == 3 and delta.delete_count == 1

    def test_merge_and_extend(self):
        first = AnnotatedDelta(SCHEMA)
        first.add_insert((1, 1), BitSet([0]))
        second = AnnotatedDelta(SCHEMA)
        second.add_delete((2, 2), BitSet([1]))
        first.merge(second)
        first.extend([AnnotatedDeltaTuple(+1, (3, 3), BitSet([2]))])
        assert len(first) == 3

    def test_chunk_roundtrip(self):
        delta = AnnotatedDelta(SCHEMA)
        for i in range(10):
            delta.add_insert((i, i * 2), BitSet([i % 3]), 1)
        for i in range(5):
            delta.add_delete((i, i), BitSet([i % 2]), 2)
        chunks = delta.to_chunks(chunk_size=4)
        rebuilt = AnnotatedDelta(SCHEMA)
        for chunk in chunks:
            rebuilt.extend(chunk.tuples())
        assert rebuilt.insert_count == delta.insert_count
        assert rebuilt.delete_count == delta.delete_count
        assert {c.sign for c in chunks} == {+1, -1}
        assert all(len(chunk) <= 4 for chunk in chunks)
        assert chunks[0].row_at(0) == tuple(chunks[0].tuples().__next__().row)


class TestAccumulators:
    def test_sum_avg_accumulator(self):
        accumulator = SumCountAccumulator(AggregateFunction.SUM)
        accumulator.update(10, 2)
        accumulator.update(None, 1)
        accumulator.update(5, -1)
        assert accumulator.result() == 15.0
        avg = SumCountAccumulator(AggregateFunction.AVG)
        avg.update(10, 1)
        avg.update(20, 1)
        assert avg.result() == 15.0

    def test_sum_of_only_nulls_is_null(self):
        accumulator = SumCountAccumulator(AggregateFunction.SUM)
        accumulator.update(None, 3)
        assert accumulator.result() is None

    def test_count_accumulators(self):
        count_attr = SumCountAccumulator(AggregateFunction.COUNT)
        count_attr.update(None, 1)
        count_attr.update(5, 2)
        assert count_attr.result() == 2
        count_star = CountStarAccumulator()
        count_star.update(None, 1)
        count_star.update(5, 2)
        assert count_star.result() == 3

    def test_minmax_accumulator_tracks_extremes(self):
        minimum = MinMaxAccumulator(AggregateFunction.MIN)
        for value in [5, 3, 9]:
            minimum.update(value, 1)
        assert minimum.result() == 3
        minimum.update(3, -1)
        assert minimum.result() == 5

    def test_minmax_rejects_wrong_function(self):
        with pytest.raises(StateError):
            MinMaxAccumulator(AggregateFunction.SUM)

    def test_minmax_buffer_eviction_and_exhaustion(self):
        minimum = MinMaxAccumulator(AggregateFunction.MIN, buffer_limit=2)
        for value in [1, 2, 3, 4]:
            minimum.update(value, 1)
        assert minimum.stored_count == 2
        assert minimum.overflow_count == 2
        # Delete both buffered values: the true minimum is now unknown.
        minimum.update(1, -1)
        minimum.update(2, -1)
        assert minimum.exhausted
        with pytest.raises(StateError):
            minimum.result()

    def test_minmax_buffer_survives_overflow_deletes(self):
        maximum = MinMaxAccumulator(AggregateFunction.MAX, buffer_limit=2)
        for value in [1, 2, 3, 4]:
            maximum.update(value, 1)
        # Deleting a non-buffered (small) value only decrements the overflow.
        maximum.update(1, -1)
        assert not maximum.exhausted
        assert maximum.result() == 4

    def test_make_accumulator_dispatch(self):
        assert isinstance(
            make_accumulator(AggregateFunction.MIN, True, 5), MinMaxAccumulator
        )
        assert isinstance(make_accumulator(AggregateFunction.COUNT, False), CountStarAccumulator)
        assert isinstance(make_accumulator(AggregateFunction.SUM, True), SumCountAccumulator)

    def test_payload_roundtrip(self):
        accumulator = MinMaxAccumulator(AggregateFunction.MAX, buffer_limit=3)
        accumulator.update(7, 2)
        restored = MinMaxAccumulator.from_payload(accumulator.to_payload())
        assert restored.result() == 7
        sums = SumCountAccumulator(AggregateFunction.AVG)
        sums.update(4, 2)
        assert SumCountAccumulator.from_payload(sums.to_payload()).result() == 4.0


class TestGroupAndMergeState:
    def test_group_state_tracks_fragments_and_existence(self):
        group = GroupState((1,), [SumCountAccumulator(AggregateFunction.SUM)])
        group.apply([10], BitSet([2]), 1)
        group.apply([20], BitSet([3]), 1)
        assert group.exists
        assert sorted(group.sketch()) == [2, 3]
        group.apply([10], BitSet([2]), -1)
        assert sorted(group.sketch()) == [3]
        group.apply([20], BitSet([3]), -1)
        assert not group.exists

    def test_group_state_payload_roundtrip(self):
        group = GroupState((1, "x"), [SumCountAccumulator(AggregateFunction.SUM)])
        group.apply([5], BitSet([1]), 2)
        restored = GroupState.from_payload(group.to_payload())
        assert restored.output_values() == group.output_values()
        assert sorted(restored.sketch()) == sorted(group.sketch())

    def test_aggregation_state_payload_roundtrip(self):
        state = AggregationState()
        group = state.get_or_create((5,), lambda: [SumCountAccumulator(AggregateFunction.SUM)])
        group.apply([2], BitSet([0]), 1)
        restored = AggregationState.from_payload(state.to_payload())
        assert len(restored) == 1
        assert restored.get((5,)).output_values() == (2.0,)

    def test_merge_state_counts(self):
        merge = MergeState()
        assert merge.update(3, 2) == 2
        assert merge.update(3, -2) == 0
        assert merge.count(3) == 0
        merge.update(1, 1)
        assert merge.active_fragments() == {1}
        restored = MergeState.from_payload(merge.to_payload())
        assert restored.active_fragments() == {1}

    def test_memory_accounting_is_positive(self):
        state = AggregationState()
        group = state.get_or_create((1,), lambda: [SumCountAccumulator(AggregateFunction.SUM)])
        group.apply([1], BitSet([0]), 1)
        assert state.memory_bytes() > 0
        assert MergeState().memory_bytes() > 0


class TestTopKState:
    def test_top_k_walks_in_order(self):
        state = TopKState()
        state.add((2,), ("b",), BitSet([1]), 1)
        state.add((1,), ("a",), BitSet([0]), 2)
        top = state.top_k(2)
        assert top[0][0] == ("a",) and top[0][2] == 2

    def test_remove_and_missing_entries(self):
        state = TopKState()
        state.add((1,), ("a",), BitSet(), 1)
        state.remove((1,), ("a",), BitSet(), 1)
        assert state.stored_count == 0
        # Removing something never stored exhausts the state only when there
        # is no overflow accounting for it.
        state.remove((9,), ("z",), BitSet(), 1)
        assert state.exhausted

    def test_buffer_eviction_and_overflow(self):
        state = TopKState(buffer_limit=2)
        for i in range(5):
            state.add((i,), (f"row{i}",), BitSet(), 1)
        assert state.stored_count == 2
        assert state.overflow_count == 3
        assert state.can_answer(2)
        # Deleting non-buffered tuples is fine.
        state.remove((4,), ("row4",), BitSet(), 1)
        assert not state.exhausted
        # Deleting buffered tuples below k makes it unable to answer.
        state.remove((0,), ("row0",), BitSet(), 1)
        state.remove((1,), ("row1",), BitSet(), 1)
        assert not state.can_answer(2)

    def test_exhausted_topk_raises(self):
        state = TopKState()
        state.exhausted = True
        with pytest.raises(StateError):
            state.top_k(1)

    def test_memory_bytes(self):
        state = TopKState()
        state.add((1,), ("payload" * 10,), BitSet([1]), 1)
        assert state.memory_bytes() > 0
