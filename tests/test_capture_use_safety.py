"""Tests for sketch capture, the use rewrite and safety analysis.

The capture tests pin the library to the paper's running example (Fig. 1,
Example 1.1/1.2): the accurate sketch of Q_top is {ρ3, ρ4}, and inserting the
tuple s8 extends it with ρ2.
"""

import pytest

from repro.relational.algebra import Selection, TableScan, walk_plan
from repro.sketch.capture import AnnotatedEvaluator, capture_sketch
from repro.sketch.ranges import DatabasePartition, RangePartition
from repro.sketch.safety import SafetyAnalyzer, safe_attributes
from repro.sketch.selection import build_database_partition, build_partition, choose_sketch_attribute
from repro.sketch.sketch import ProvenanceSketch
from repro.sketch.use import estimated_selectivity, instrument_plan, sketch_predicate
from tests.conftest import Q_TOP, S8


class TestCapturePaperExample:
    def test_sketch_of_running_example(self, sales_db, sales_partition):
        plan = sales_db.plan(Q_TOP)
        sketch = capture_sketch(plan, sales_partition, sales_db)
        # ρ3 = [1001, 1500] and ρ4 = [1501, 10000] are fragments 2 and 3.
        assert sorted(sketch.fragment_ids()) == [2, 3]

    def test_sketch_after_inserting_s8_gains_rho2(self, sales_db, sales_partition):
        plan = sales_db.plan(Q_TOP)
        sales_db.insert("sales", [S8])
        sketch = capture_sketch(plan, sales_partition, sales_db)
        assert sorted(sketch.fragment_ids()) == [1, 2, 3]

    def test_annotated_result_matches_plain_result(self, sales_db, sales_partition):
        plan = sales_db.plan(Q_TOP)
        annotated = AnnotatedEvaluator(sales_db, sales_partition).evaluate(plan)
        plain = sales_db.query(plan)
        assert annotated.to_relation() == plain

    def test_unpartitioned_table_gets_empty_annotations(self, sales_db):
        partition = DatabasePartition([RangePartition("other", "x", [0, 1])])
        plan = sales_db.plan("SELECT brand FROM sales WHERE price > 1000")
        # 'sales' has no partition in Φ, so annotations are empty and the
        # captured sketch is empty (equivalent to a single all-covering range).
        sketch = AnnotatedEvaluator(sales_db, partition).capture(plan)
        assert len(sketch) == 0


class TestCaptureOperators:
    def test_join_unions_annotations(self, join_db):
        plan = join_db.plan(
            "SELECT a, sum(e) AS se FROM r JOIN s ON b = d GROUP BY a HAVING sum(e) > 0"
        )
        partition = build_database_partition(join_db, plan, 8)
        sketch = capture_sketch(plan, partition, join_db)
        assert len(sketch) > 0

    def test_distinct_capture(self, synthetic_db):
        database, _rows = synthetic_db
        plan = database.plan("SELECT DISTINCT a FROM r WHERE b < 100")
        partition = DatabasePartition([build_partition(database, "r", "a", 10)])
        sketch = capture_sketch(plan, partition, database)
        instrumented = instrument_plan(plan, sketch)
        assert database.query(instrumented) == database.query(plan)

    def test_topk_capture_covers_topk_groups(self, synthetic_db):
        database, _rows = synthetic_db
        plan = database.plan("SELECT a, avg(b) AS ab FROM r GROUP BY a ORDER BY a LIMIT 3")
        partition = DatabasePartition([build_partition(database, "r", "a", 10)])
        sketch = capture_sketch(plan, partition, database)
        instrumented = instrument_plan(plan, sketch)
        assert database.query(instrumented) == database.query(plan)


class TestUseRewrite:
    def test_sketch_predicate_merges_adjacent_ranges(self, sales_db, sales_partition):
        sketch = ProvenanceSketch(sales_partition, [2, 3])
        predicate = sketch_predicate(sketch, "sales")
        text = predicate.canonical()
        assert "1001" in text and "10000" in text
        # Adjacent ranges collapse into a single conjunction (one BETWEEN).
        assert "OR" not in text

    def test_empty_sketch_yields_contradiction(self, sales_partition):
        sketch = ProvenanceSketch.empty(sales_partition)
        predicate = sketch_predicate(sketch, "sales")
        assert predicate.canonical() == "(1 = 0)"

    def test_unpartitioned_table_has_no_predicate(self, sales_partition):
        sketch = ProvenanceSketch.full(sales_partition)
        assert sketch_predicate(sketch, "unrelated") is None

    def test_full_coverage_skips_filtering(self, sales_db):
        partition = DatabasePartition(
            [RangePartition.from_boundaries("sales", "price", [1, 10000], cover_domain=True)]
        )
        sketch = ProvenanceSketch.full(partition)
        assert sketch_predicate(sketch, "sales") is None

    def test_instrumented_plan_filters_scans(self, sales_db, sales_partition):
        plan = sales_db.plan(Q_TOP)
        sketch = ProvenanceSketch(sales_partition, [2, 3])
        instrumented = instrument_plan(plan, sketch)
        scans_with_filter = [
            node
            for node in walk_plan(instrumented)
            if isinstance(node, Selection) and isinstance(node.child, TableScan)
        ]
        assert scans_with_filter

    def test_instrumented_query_result_is_unchanged(self, sales_db, sales_partition):
        plan = sales_db.plan(Q_TOP)
        sketch = capture_sketch(plan, sales_partition, sales_db)
        instrumented = instrument_plan(plan, sketch)
        assert sales_db.query(instrumented) == sales_db.query(plan)

    def test_estimated_selectivity(self, sales_partition):
        half = ProvenanceSketch(sales_partition, [0, 1])
        assert estimated_selectivity(half, "sales") == 0.5
        assert estimated_selectivity(half, "unknown") == 1.0


class TestSafety:
    def test_group_by_attribute_is_safe(self, sales_db):
        plan = sales_db.plan(Q_TOP)
        assert "brand" in safe_attributes(plan, sales_db, "sales")

    def test_monotone_having_makes_all_attributes_safe(self, sales_db):
        plan = sales_db.plan(Q_TOP)
        # SUM(...) > c is monotone, so even non-group attributes are safe.
        assert "price" in safe_attributes(plan, sales_db, "sales")

    def test_non_monotone_having_restricts_to_group_attributes(self, sales_db):
        plan = sales_db.plan(
            "SELECT brand, avg(price) AS ap FROM sales GROUP BY brand HAVING avg(price) > 1000"
        )
        safe = safe_attributes(plan, sales_db, "sales")
        assert "brand" in safe
        assert "price" not in safe

    def test_monotone_queries_allow_everything(self, sales_db):
        plan = sales_db.plan("SELECT brand FROM sales WHERE price > 100")
        safe = safe_attributes(plan, sales_db, "sales")
        assert safe == {"sid", "brand", "productname", "price", "numsold"}

    def test_topk_restricts_to_group_attributes(self, synthetic_db):
        database, _rows = synthetic_db
        plan = database.plan("SELECT a, avg(b) AS ab FROM r GROUP BY a ORDER BY a LIMIT 5")
        safe = safe_attributes(plan, database, "r")
        assert "a" in safe
        assert "b" not in safe

    def test_join_equivalence_propagates_safety(self, join_db):
        plan = join_db.plan(
            "SELECT d, sum(c) AS sc FROM r JOIN s ON a = d GROUP BY d HAVING avg(c) < 500"
        )
        analyzer = SafetyAnalyzer(plan, join_db)
        # a is join-equivalent to the group-by attribute d.
        assert "a" in analyzer.safe_attributes("r")
        assert analyzer.is_safe("s", "d")

    def test_unreferenced_table_has_no_safe_attributes(self, sales_db):
        plan = sales_db.plan(Q_TOP)
        sales_db.create_table("unrelated", ["x"])
        assert safe_attributes(plan, sales_db, "unrelated") == set()

    def test_partitionable_tables(self, sales_db):
        analyzer = SafetyAnalyzer(sales_db.plan(Q_TOP), sales_db)
        assert analyzer.partitionable_tables() == {"sales"}


class TestAttributeSelection:
    def test_prefers_numeric_group_by_attribute(self, synthetic_db):
        database, _rows = synthetic_db
        plan = database.plan("SELECT a, avg(b) AS ab FROM r GROUP BY a HAVING avg(c) < 500")
        assert choose_sketch_attribute(plan, database, "r") == "a"

    def test_returns_none_without_safe_numeric_attribute(self, sales_db):
        plan = sales_db.plan(
            "SELECT productname, avg(price) AS ap FROM sales "
            "GROUP BY productname HAVING avg(price) > 1000"
        )
        # The only safe attribute (productname) is non-numeric.
        assert choose_sketch_attribute(plan, sales_db, "sales") is None

    def test_build_partition_equi_depth_and_width(self, synthetic_db):
        database, _rows = synthetic_db
        depth = build_partition(database, "r", "a", 8, method="equi-depth")
        width = build_partition(database, "r", "a", 8, method="equi-width")
        assert depth.num_fragments <= 8
        assert width.num_fragments == 8
        with pytest.raises(Exception):
            build_partition(database, "r", "a", 0)

    def test_build_database_partition(self, join_db):
        plan = join_db.plan(
            "SELECT a, sum(e) AS se FROM r JOIN s ON b = d GROUP BY a HAVING sum(e) > 0"
        )
        partition = build_database_partition(join_db, plan, 6)
        assert "r" in partition.tables()
