"""Tests for predicate interval extraction and the backend attribute index.

These two pieces implement the physical-design side of provenance-based data
skipping: the use rewrite injects range predicates, the predicate analysis
turns them into intervals, and the ordered index serves them without a full
table scan.
"""

import math

import pytest

from repro.core.errors import StorageError
from repro.relational.expressions import (
    Between,
    ColumnRef,
    Comparison,
    FunctionCall,
    Literal,
    LogicalOp,
)
from repro.relational.predicates import Interval, extract_intervals, intervals_are_selective
from repro.storage.database import Database
from repro.storage.table import AttributeIndex, StoredTable


class TestInterval:
    def test_intersect(self):
        a = Interval(0, 10)
        b = Interval(5, 20)
        merged = a.intersect(b)
        assert merged.low == 5 and merged.high == 10

    def test_empty_detection(self):
        assert Interval(5, 1).is_empty()
        assert Interval(3, 3, low_inclusive=False).is_empty()
        assert not Interval(3, 3).is_empty()

    def test_everything(self):
        assert not Interval.everything().is_empty()


class TestExtractIntervals:
    def test_simple_comparisons(self):
        column = ColumnRef("price")
        assert extract_intervals(Comparison(">=", column, Literal(10)), "price") == [
            Interval(10, math.inf, True, True)
        ]
        less = extract_intervals(Comparison("<", column, Literal(10)), "price")
        assert less == [Interval(-math.inf, 10, True, False)]
        equal = extract_intervals(Comparison("=", column, Literal(10)), "price")
        assert equal == [Interval(10, 10)]

    def test_reversed_comparison(self):
        predicate = Comparison(">", Literal(100), ColumnRef("price"))
        intervals = extract_intervals(predicate, "price")
        assert intervals == [Interval(-math.inf, 100, True, False)]

    def test_between(self):
        predicate = Between(ColumnRef("t.price"), Literal(5), Literal(9))
        assert extract_intervals(predicate, "price") == [Interval(5, 9)]

    def test_qualified_names_match_bare_attribute(self):
        predicate = Comparison(">=", ColumnRef("sales.price"), Literal(3))
        assert extract_intervals(predicate, "price") is not None

    def test_other_attributes_give_no_bound(self):
        predicate = Comparison(">=", ColumnRef("other"), Literal(3))
        assert extract_intervals(predicate, "price") is None

    def test_and_intersects_bounds(self):
        predicate = LogicalOp(
            "AND",
            [
                Comparison(">=", ColumnRef("price"), Literal(10)),
                Comparison("<", ColumnRef("price"), Literal(20)),
                Comparison(">", ColumnRef("unrelated"), Literal(0)),
            ],
        )
        intervals = extract_intervals(predicate, "price")
        assert len(intervals) == 1
        assert intervals[0].low == 10 and intervals[0].high == 20

    def test_or_unions_bounds(self):
        predicate = LogicalOp(
            "OR",
            [
                Between(ColumnRef("price"), Literal(0), Literal(5)),
                Between(ColumnRef("price"), Literal(50), Literal(60)),
            ],
        )
        intervals = extract_intervals(predicate, "price")
        assert len(intervals) == 2

    def test_or_with_unbounded_disjunct_is_unbounded(self):
        predicate = LogicalOp(
            "OR",
            [
                Between(ColumnRef("price"), Literal(0), Literal(5)),
                Comparison(">", ColumnRef("other"), Literal(1)),
            ],
        )
        assert extract_intervals(predicate, "price") is None

    def test_non_numeric_literal_gives_no_bound(self):
        predicate = Comparison("=", ColumnRef("price"), Literal("cheap"))
        assert extract_intervals(predicate, "price") is None

    def test_unsupported_expressions_give_no_bound(self):
        predicate = Comparison(
            ">", FunctionCall("abs", [ColumnRef("price")]), Literal(3)
        )
        assert extract_intervals(predicate, "price") is None

    def test_selectivity_check(self):
        assert intervals_are_selective([Interval(0, 5)])
        assert not intervals_are_selective(None)
        assert not intervals_are_selective([Interval(-math.inf, math.inf)])
        assert intervals_are_selective([])


class TestAttributeIndex:
    def test_range_scan(self):
        index = AttributeIndex("v", 1)
        for i in range(20):
            index.insert((i, i * 10), 1)
        rows = list(index.rows_in_intervals([Interval(30, 60)]))
        values = sorted(row[1] for row, _m in rows)
        assert values == [30, 40, 50, 60]

    def test_open_bounds(self):
        index = AttributeIndex("v", 0)
        for value in [1, 2, 3]:
            index.insert((value,), 1)
        rows = list(index.rows_in_intervals([Interval(1, 3, False, False)]))
        assert [row[0] for row, _m in rows] == [2]

    def test_deletes_and_tombstones(self):
        index = AttributeIndex("v", 0)
        index.insert((5,), 2)
        index.delete((5,), 1)
        assert list(index.rows_in_intervals([Interval(0, 10)])) == [((5,), 1)]
        index.delete((5,), 1)
        assert list(index.rows_in_intervals([Interval(0, 10)])) == []

    def test_null_values_are_skipped(self):
        index = AttributeIndex("v", 0)
        index.insert((None,), 1)
        assert list(index.rows_in_intervals([Interval(-1e9, 1e9)])) == []

    def test_duplicate_rows_reported_once(self):
        index = AttributeIndex("v", 0)
        index.insert((7,), 3)
        rows = list(index.rows_in_intervals([Interval(0, 10), Interval(5, 9)]))
        assert rows == [((7,), 3)]


class TestIndexedSelection:
    @pytest.fixture()
    def indexed_db(self) -> Database:
        database = Database()
        database.create_table("t", ["id", "v"], primary_key="id")
        database.insert("t", [(i, i % 100) for i in range(2000)])
        database.create_index("t", "v")
        return database

    def test_table_level_index_api(self):
        table = StoredTable("t", ["id", "v"])
        table.insert_many([(i, i) for i in range(10)])
        table.create_index("v")
        assert table.has_index("v")
        assert table.indexed_attributes() == ["v"]
        assert len(list(table.rows_in_intervals("v", [Interval(2, 4)]))) == 3
        with pytest.raises(StorageError):
            table.index_on("missing")

    def test_index_stays_consistent_under_updates(self, indexed_db):
        indexed_db.insert("t", [(5000, 42)])
        indexed_db.delete_rows("t", [(0, 0)])
        result = indexed_db.query("SELECT id FROM t WHERE v = 42")
        ids = {row[0] for row in result.rows()}
        assert 5000 in ids and 42 in ids

    def test_index_scan_results_match_full_scan(self, indexed_db):
        sql = "SELECT id, v FROM t WHERE v >= 10 AND v < 13"
        with_index = indexed_db.query(sql)
        plain = Database()
        plain.create_table("t", ["id", "v"], primary_key="id")
        plain.insert("t", [(i, i % 100) for i in range(2000)])
        assert sorted(with_index.rows()) == sorted(plain.query(sql).rows())

    def test_index_scan_counter_increases(self, indexed_db):
        before = indexed_db.index_scan_count
        indexed_db.query("SELECT id FROM t WHERE v BETWEEN 5 AND 7")
        assert indexed_db.index_scan_count > before

    def test_unindexed_predicates_fall_back_to_scan(self, indexed_db):
        before = indexed_db.index_scan_count
        indexed_db.query("SELECT id FROM t WHERE id % 2 = 0")
        assert indexed_db.index_scan_count == before

    def test_instrumented_sketch_query_uses_the_index(self):
        from repro.imp.middleware import IMPSystem
        from repro.workloads.queries import q_groups
        from repro.workloads.synthetic import load_synthetic

        database = Database()
        load_synthetic(database, num_rows=2000, num_groups=100, seed=13)
        system = IMPSystem(database, num_fragments=32)
        system.run_query(q_groups(threshold=400))
        assert database.has_index("r", "a")
        before = database.index_scan_count
        system.run_query(q_groups(threshold=400))
        assert database.index_scan_count > before
