"""Deterministic differential concurrency harness.

The serving layer's claim is that concurrency is *invisible*: N reader
sessions at pinned snapshots, a writer committing under the write lock and
background sketch maintenance must together produce exactly the states a
serial execution of the same operations produces.  These tests verify the
claim two ways:

* **Deterministic interleavings** -- real threads stepped one operation at a
  time by a :class:`TurnScheduler` whose schedule comes from a seeded RNG.
  Every operation appends to a global log; afterwards the log is replayed
  serially on a fresh database and every pinned-snapshot query result and
  every maintained sketch must be bit-identical.  Runs across >= 3 seeds
  (and a Hypothesis fuzz variant generates random schedules and op mixes).
* **Free-running stress** -- unstepped threads race for real; snapshot
  stability, final-state convergence and exact counter accounting are
  asserted where determinism survives true parallelism.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.errors import StorageError
from repro.imp.middleware import IMPSystem
from repro.imp.sketch_store import SketchStore
from repro.storage.database import Database
from repro.workloads.synthetic import load_synthetic

# --------------------------------------------------------------------------------------
# The barrier-stepped scheduler
# --------------------------------------------------------------------------------------


class TurnScheduler:
    """Grant real threads one operation at a time, in a scripted order.

    ``schedule`` is a sequence of worker ids; position ``i`` means worker
    ``schedule[i]`` performs its next operation while every other worker
    blocks on the condition variable.  Turns granted to finished workers are
    skipped, and workers with operations left after the schedule runs out
    drain in ascending worker-id order -- so the *total* operation order is a
    pure function of (schedule, per-worker scripts), which is what makes the
    differential replay exact.
    """

    def __init__(self, schedule: list[int], workers: list[int]) -> None:
        self._condition = threading.Condition()
        self._schedule = schedule
        self._position = 0
        self._alive = set(workers)
        self.errors: list[BaseException] = []

    def _current_worker(self) -> int | None:
        while self._position < len(self._schedule):
            worker = self._schedule[self._position]
            if worker in self._alive:
                return worker
            self._position += 1
        # Schedule exhausted: drain remaining workers deterministically.
        return min(self._alive) if self._alive else None

    def acquire(self, worker: int) -> bool:
        """Block until it is ``worker``'s turn; False when the worker should
        not run again (it already finished, or an error aborted the run)."""
        with self._condition:
            while True:
                if self.errors or worker not in self._alive:
                    return False
                if self._current_worker() == worker:
                    return True
                self._condition.wait(timeout=10.0)

    def release(self, worker: int, more: bool) -> None:
        """End the current turn; ``more=False`` retires the worker."""
        with self._condition:
            if self._position < len(self._schedule) and self._schedule[
                self._position
            ] == worker:
                self._position += 1
            if not more:
                self._alive.discard(worker)
            self._condition.notify_all()

    def abort(self, worker: int, error: BaseException) -> None:
        with self._condition:
            self.errors.append(error)
            self._alive.discard(worker)
            self._condition.notify_all()

    def run(self, steps: dict[int, object]) -> None:
        """Run one thread per worker; each ``steps[w]`` is a callable doing
        ONE operation per call and returning False when out of operations."""

        def loop(worker: int) -> None:
            step = steps[worker]
            while self.acquire(worker):
                try:
                    more = step()
                except BaseException as exc:  # noqa: BLE001 - reported to the test
                    self.abort(worker, exc)
                    return
                self.release(worker, more)

        threads = [
            threading.Thread(target=loop, args=(worker,), name=f"worker-{worker}")
            for worker in steps
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not any(thread.is_alive() for thread in threads), "harness deadlock"
        if self.errors:
            raise self.errors[0]


# --------------------------------------------------------------------------------------
# Scenario construction
# --------------------------------------------------------------------------------------

QUERIES = [
    "SELECT a, SUM(c) AS total FROM r GROUP BY a HAVING SUM(c) > 400",
    "SELECT a, COUNT(id) AS n FROM r GROUP BY a",
    "SELECT id, b FROM r WHERE b > 800",
]

CAPTURE_QUERIES = QUERIES[:2]


def sketch_fingerprint(sketch):
    """Content identity of a sketch across databases.

    ``ProvenanceSketch.__eq__`` requires partition *object* identity (sound
    within one store); the differential compares sketches from two separate
    runs, so it fingerprints the partition boundaries plus the fragment bits.
    """
    if sketch is None:
        return None
    ranges = tuple(
        (p.table, p.attribute, tuple(p.boundaries))
        for p in sketch.partition
    )
    return (ranges, tuple(sorted(sketch.fragment_ids())))


def make_database(num_rows: int = 400, num_groups: int = 12, seed: int = 9):
    database = Database()
    table = load_synthetic(
        database, num_rows=num_rows, num_groups=num_groups, seed=seed
    )
    return database, table


def make_batches(table, rng, count: int):
    """Precompute commit batches (shared by the concurrent and serial runs)."""
    batches = []
    for index in range(count):
        if index % 3 == 2:
            deletes = table.pick_deletes(rng.randrange(1, 6))
        else:
            deletes = []
        inserts = table.make_inserts(rng.randrange(3, 12))
        batches.append((inserts, deletes))
    return batches


def apply_batch(database: Database, batch) -> int:
    inserts, deletes = batch
    if deletes:
        database.delete_rows("r", deletes)
    return database.insert("r", inserts)


def make_system(database: Database) -> IMPSystem:
    """An IMP middleware with sketches captured for the capture queries."""
    system = IMPSystem(database, num_fragments=16)
    for sql in CAPTURE_QUERIES:
        system.run_query(sql)
    assert len(system.store) == len(CAPTURE_QUERIES)
    return system


def reader_script(rng, num_queries: int) -> list[str]:
    """A per-reader op script: pin, query, maybe refresh, close."""
    ops = ["open"]
    for _ in range(num_queries):
        ops.append(f"query:{rng.randrange(len(QUERIES))}")
        if rng.random() < 0.25:
            ops.append("refresh")
    ops.append("close")
    return ops


# --------------------------------------------------------------------------------------
# Concurrent execution + serial replay
# --------------------------------------------------------------------------------------


def run_interleaved(seed: int, num_readers: int = 2, num_commits: int = 6):
    """Execute one seeded interleaving; return the global operation log.

    Log entries (in deterministic total order):
      ("commit", batch_index, produced_version)
      ("read", reader, pinned_version, query_index, sorted_rows)
      ("maintain", target_version, ((sql, valid_at, sketch), ...))
    """
    import random

    rng = random.Random(seed)
    database, table = make_database()
    system = make_system(database)
    batches = make_batches(table, rng, num_commits)
    scripts = {
        reader: reader_script(rng, rng.randrange(3, 7))
        for reader in range(num_readers)
    }
    writer_id = num_readers
    maintenance_id = num_readers + 1
    num_rounds = rng.randrange(2, 5)

    workers = [*range(num_readers), writer_id, maintenance_id]
    weights = [3] * num_readers + [2, 1]
    total_ops = sum(len(s) for s in scripts.values()) + num_commits + num_rounds
    schedule = rng.choices(workers, weights=weights, k=total_ops * 2)

    log: list[tuple] = []
    sessions: dict[int, object] = {}

    def reader_step(reader: int):
        script = scripts[reader]

        def step() -> bool:
            op = script.pop(0)
            if op == "open":
                sessions[reader] = database.connect(name=f"reader-{reader}")
            elif op == "refresh":
                sessions[reader].refresh()
            elif op == "close":
                sessions[reader].close()
            else:
                query_index = int(op.split(":")[1])
                session = sessions[reader]
                rows = tuple(session.query(QUERIES[query_index]).to_sorted_list())
                log.append(("read", reader, session.pinned_version, query_index, rows))
            return bool(script)

        return step

    pending_batches = list(range(num_commits))

    def writer_step() -> bool:
        index = pending_batches.pop(0)
        version = apply_batch(database, batches[index])
        log.append(("commit", index, version))
        return bool(pending_batches)

    rounds_left = [num_rounds]

    def maintenance_step() -> bool:
        system.scheduler.run_round()
        snapshot = tuple(
            (entry.sql, entry.valid_at_version, sketch_fingerprint(entry.sketch))
            for entry in system.store.entries()
        )
        log.append(("maintain", database.version, snapshot))
        rounds_left[0] -= 1
        return rounds_left[0] > 0

    steps = {reader: reader_step(reader) for reader in range(num_readers)}
    steps[writer_id] = writer_step
    steps[maintenance_id] = maintenance_step

    TurnScheduler(schedule, workers).run(steps)

    for session in sessions.values():
        if not session.is_closed:
            session.close()
    assert len(log) >= num_commits + num_rounds
    return log, batches


def replay_serially(log, batches) -> None:
    """Re-execute the logged operation order single-threaded and assert every
    read and every sketch is bit-identical to the concurrent run."""
    database, _table = make_database()
    system = make_system(database)

    for entry in log:
        kind = entry[0]
        if kind == "commit":
            _, index, version = entry
            assert apply_batch(database, batches[index]) == version
        elif kind == "read":
            _, reader, pinned, query_index, rows = entry
            with database.connect(name=f"replay-{reader}") as session:
                session.refresh(pinned)
                replayed = tuple(session.query(QUERIES[query_index]).to_sorted_list())
            assert replayed == rows, (
                f"snapshot read diverged: reader {reader} at version {pinned}, "
                f"query {query_index}"
            )
        else:
            _, target, sketches = entry
            assert database.version == target
            system.scheduler.run_round()
            replayed = tuple(
                (e.sql, e.valid_at_version, sketch_fingerprint(e.sketch))
                for e in system.store.entries()
            )
            for (sql_a, at_a, sketch_a), (sql_b, at_b, sketch_b) in zip(
                replayed, sketches
            ):
                assert sql_a == sql_b
                assert at_a == at_b, f"sketch {sql_a!r} maintained to {at_b}, replay {at_a}"
                assert sketch_a == sketch_b, f"sketch {sql_a!r} diverged at version {at_a}"


@pytest.mark.parametrize("seed", [11, 23, 47])
def test_interleaved_execution_matches_serial_replay(seed):
    """Pinned-snapshot reads and maintained sketches are bit-identical to a
    serial replay of the same total operation order, across seeds."""
    log, batches = run_interleaved(seed)
    replay_serially(log, batches)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    num_readers=st.integers(min_value=1, max_value=3),
    num_commits=st.integers(min_value=1, max_value=8),
)
def test_fuzzed_schedules_match_serial_replay(seed, num_readers, num_commits):
    """Hypothesis sweep over random query/update/maintenance schedules."""
    log, batches = run_interleaved(
        seed, num_readers=num_readers, num_commits=num_commits
    )
    replay_serially(log, batches)


# --------------------------------------------------------------------------------------
# Free-running (unstepped) concurrency
# --------------------------------------------------------------------------------------


def test_free_running_readers_see_stable_snapshots():
    """Unstepped readers, writer and background maintenance: every pinned
    read stays identical to its first answer, and after the final drain the
    sketches equal a serial maintenance of the full history."""
    import random

    database, table = make_database(num_rows=600, num_groups=15)
    system = make_system(database)
    rng = random.Random(3)
    commit_batches = [
        (table.make_inserts(rng.randrange(5, 15)), []) for _ in range(10)
    ]

    stop = threading.Event()
    violations: list[str] = []

    def reader(slot: int) -> None:
        with database.connect(name=f"stress-{slot}") as session:
            baselines = {
                sql: tuple(session.query(sql).to_sorted_list()) for sql in QUERIES
            }
            while not stop.is_set():
                for sql, baseline in baselines.items():
                    if tuple(session.query(sql).to_sorted_list()) != baseline:
                        violations.append(
                            f"reader {slot} at {session.pinned_version}: {sql}"
                        )

    threads = [threading.Thread(target=reader, args=(slot,)) for slot in range(3)]
    system.start_background_maintenance(interval=0.002)
    for thread in threads:
        thread.start()
    for batch in commit_batches:
        apply_batch(database, batch)
    stop.set()
    for thread in threads:
        thread.join(timeout=30.0)
    assert not any(thread.is_alive() for thread in threads)
    system.stop_background_maintenance(drain=True)
    assert violations == []

    # Differential: serial system fed the same commits, maintained once.
    serial_db, _ = make_database(num_rows=600, num_groups=15)
    serial = make_system(serial_db)
    for batch in commit_batches:
        apply_batch(serial_db, batch)
    serial.scheduler.run_round()
    concurrent_sketches = {
        e.sql: sketch_fingerprint(e.sketch) for e in system.store.entries()
    }
    for entry in serial.store.entries():
        assert concurrent_sketches[entry.sql] == sketch_fingerprint(entry.sketch)
        assert concurrent_sketches[entry.sql] is not None


def test_round_skips_entries_captured_past_its_target(monkeypatch):
    """Regression: a sketch captured after a round read its target version
    must be left for the next round, not maintained through an inverted
    (since > until) delta window."""
    database, table = make_database(num_rows=100, num_groups=5)
    system = make_system(database)  # entries captured at version 1
    database.insert("r", table.make_inserts(5))  # stale relative to version 2
    # Simulate the race: the round reads its target *before* the capture
    # landed, i.e. target < every entry's valid_at_version.
    monkeypatch.setattr(type(database), "version", property(lambda self: 0))
    report = system.scheduler.run_round()
    assert report.examined == 0
    assert report.delta_fetches == 0
    monkeypatch.undo()
    # The next round (with a correct target) maintains them normally.
    report = system.scheduler.run_round()
    assert report.maintained == len(CAPTURE_QUERIES)
    for entry in system.store.entries():
        assert entry.valid_at_version == database.version


def test_session_registry_retention_and_pruning():
    """Closing sessions drives snapshot-cache pruning; open pins protect
    exactly the versions they can still read."""
    database, table = make_database(num_rows=100, num_groups=5)
    stored = database.table("r")

    early = database.connect()
    early.query(QUERIES[1])
    for _ in range(3):
        database.insert("r", table.make_inserts(5))
        late = database.connect()
        late.query(QUERIES[1])
        late.close()
    assert stored.snapshot_memory_entries() >= 2
    oldest = database.session_registry.oldest_pinned()
    assert oldest == early.pinned_version
    # The early pin keeps its snapshot alive through pruning...
    database.prune_history()
    assert stored.snapshot_batch(stored.effective_version(early.pinned_version)) is not None
    assert tuple(early.query(QUERIES[1]).to_sorted_list())  # still served
    early.close()
    # ...and closing it reclaims everything below the current version.
    assert stored.snapshot_memory_entries() <= 1
    assert database.session_registry.active_sessions() == 0


def test_snapshot_batch_rejects_unknown_versions_even_when_cached():
    """Regression: the lock-free cache fast path must not serve a batch for
    an out-of-range version that happens to map to a cached effective key."""
    database, table = make_database(num_rows=50, num_groups=5)
    database.snapshot_batch("r", database.version)  # materialize + cache
    with pytest.raises(StorageError):
        database.snapshot_batch("r", database.version + 500)
    with pytest.raises(StorageError):
        database.snapshot_batch("r", -1)


def test_drop_and_recreate_severs_snapshot_history():
    """Regression: a recreated table never rolls back through the dropped
    table's audit deltas (same name, different table)."""
    database = Database()
    database.create_table("t", ["id", "v"], primary_key="id")
    database.insert("t", [(1, 10), (2, 20)])
    session = database.connect()
    database.drop_table("t")
    database.create_table("t", ["id", "v"], primary_key="id")
    database.insert("t", [(7, 70)])
    # A fresh pin reads exactly the recreated table's contents...
    with database.connect() as fresh:
        assert sorted(fresh.query("SELECT id, v FROM t").rows()) == [(7, 70)]
    # ...and the recreated table's snapshots come from its own (empty)
    # pre-insert history, not the old table's deltas.
    assert database.snapshot_batch("t", session.pinned_version).row_tuples() == []
    session.close()


def test_refresh_below_audit_floor_is_rejected():
    """Regression: re-pinning below the pruned audit floor fails fast at
    refresh time instead of breaking every later query."""
    database, table = make_database(num_rows=60, num_groups=4)
    for _ in range(4):
        database.insert("r", table.make_inserts(3))
    session = database.connect()
    report = database.prune_history(prune_audit=True)
    assert report["audit_records"] > 0
    assert database.audit_floor == report["floor"]
    with pytest.raises(StorageError):
        session.refresh(1)
    # The session is unharmed and still reads its pinned snapshot.
    assert session.query(QUERIES[1]).to_sorted_list()
    session.close()


def test_delta_reads_below_audit_floor_fail_loudly():
    """Regression: after prune_history(prune_audit=True), a maintainer whose
    sketch is valid below the floor gets a StorageError, never a silently
    truncated delta that would corrupt its sketch."""
    database, table = make_database(num_rows=100, num_groups=5)
    system = make_system(database)  # sketches valid at version 1
    for _ in range(4):
        database.insert("r", table.make_inserts(3))
    database.prune_history(prune_audit=True)  # no sessions: floor = current
    with pytest.raises(StorageError, match="pruned"):
        database.delta_since("r", 1)
    with pytest.raises(StorageError, match="pruned"):
        system.scheduler.run_round()


def test_refreshing_session_prunes_superseded_snapshots():
    """Regression: a long-lived session that keeps refreshing does not
    accumulate one cached snapshot batch per superseded version."""
    database, table = make_database(num_rows=100, num_groups=5)
    stored = database.table("r")
    with database.connect() as session:
        for _ in range(6):
            database.insert("r", table.make_inserts(4))
            session.refresh()
            session.query(QUERIES[1])
            assert stored.snapshot_memory_entries() <= 1


def test_audit_prune_respects_pinned_floor():
    """prune_history(prune_audit=True) keeps the records needed to
    materialize every version an open session can read."""
    database, table = make_database(num_rows=80, num_groups=4)
    session = database.connect()
    for _ in range(4):
        database.insert("r", table.make_inserts(3))
    database.prune_history(prune_audit=True)
    # The session can still materialize its pinned snapshot from scratch.
    rows = session.query(QUERIES[1]).to_sorted_list()
    assert sum(count for _gid, count in rows) == 80
    session.close()


# --------------------------------------------------------------------------------------
# SketchStore synchronization regression (ticks / use-counts)
# --------------------------------------------------------------------------------------


def test_sketch_store_ticks_and_use_counts_are_exact_under_threads():
    """Regression for unsynchronized recency ticks and use-counts: N threads
    hammering record_use must account every single use."""
    database, _table = make_database(num_rows=200, num_groups=8)
    system = make_system(database)
    entries = list(system.store.entries())
    store: SketchStore = system.store
    base_tick = store._tick
    base_uses = {id(entry): entry.use_count for entry in entries}

    per_thread = 400
    num_threads = 8
    barrier = threading.Barrier(num_threads)

    def hammer(slot: int) -> None:
        barrier.wait()
        for index in range(per_thread):
            store.record_use(entries[(slot + index) % len(entries)])

    threads = [threading.Thread(target=hammer, args=(slot,)) for slot in range(num_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    total = num_threads * per_thread
    assert store._tick == base_tick + total
    gained = sum(
        entry.use_count - base_uses[id(entry)] for entry in entries
    )
    assert gained == total
