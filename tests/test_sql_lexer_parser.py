"""Tests for the SQL lexer and parser."""

import pytest

from repro.core.errors import ParseError
from repro.relational.expressions import Between, Comparison, FunctionCall, LogicalOp
from repro.sql.ast import (
    DeleteStatement,
    InsertStatement,
    JoinSource,
    SelectStatement,
    SubquerySource,
    TableSource,
)
from repro.sql.lexer import tokenize
from repro.sql.parser import parse_select, parse_statement


class TestLexer:
    def test_keywords_and_identifiers_are_lowercased(self):
        tokens = tokenize("SELECT Brand FROM Sales")
        assert [t.type for t in tokens[:-1]] == ["KEYWORD", "IDENT", "KEYWORD", "IDENT"]
        assert tokens[1].value == "brand"
        assert tokens[3].value == "sales"

    def test_numbers_and_strings(self):
        tokens = tokenize("42 3.14 'O''Hare'")
        assert tokens[0].value == "42"
        assert tokens[1].value == "3.14"
        assert tokens[2].type == "STRING"
        assert tokens[2].value == "O'Hare"

    def test_operators(self):
        tokens = tokenize("a >= 1 AND b <> 2")
        ops = [t.value for t in tokens if t.type == "OP"]
        assert ops == [">=", "<>"]

    def test_comments_are_skipped(self):
        tokens = tokenize("SELECT a -- trailing comment\nFROM r")
        assert [t.value for t in tokens if t.type == "IDENT"] == ["a", "r"]

    def test_unterminated_string_raises(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_unexpected_character_raises(self):
        with pytest.raises(ParseError):
            tokenize("SELECT a FROM r WHERE a ~ 3")

    def test_eof_token_terminates_stream(self):
        assert tokenize("SELECT")[-1].type == "EOF"


class TestParseSelect:
    def test_simple_select(self):
        statement = parse_select("SELECT a, b AS bee FROM r WHERE a > 3")
        assert isinstance(statement, SelectStatement)
        assert [item.alias for item in statement.select_items] == [None, "bee"]
        assert isinstance(statement.where, Comparison)
        assert isinstance(statement.from_sources[0], TableSource)

    def test_select_star(self):
        statement = parse_select("SELECT * FROM r")
        assert statement.select_items[0].expression.name == "*"

    def test_group_by_having(self):
        statement = parse_select(
            "SELECT a, sum(b) AS sb FROM r GROUP BY a HAVING sum(b) > 10 AND avg(c) < 5"
        )
        assert len(statement.group_by) == 1
        assert isinstance(statement.having, LogicalOp)
        assert isinstance(statement.select_items[1].expression, FunctionCall)

    def test_order_by_limit(self):
        statement = parse_select("SELECT a FROM r ORDER BY a DESC, b LIMIT 7")
        assert statement.limit == 7
        assert statement.order_by[0].ascending is False
        assert statement.order_by[1].ascending is True

    def test_explicit_join(self):
        statement = parse_select("SELECT a FROM r JOIN s ON r.a = s.b")
        source = statement.from_sources[0]
        assert isinstance(source, JoinSource)
        assert isinstance(source.condition, Comparison)

    def test_comma_join(self):
        statement = parse_select("SELECT a FROM r, s, t WHERE a = b")
        assert len(statement.from_sources) == 3

    def test_subquery_in_from(self):
        statement = parse_select(
            "SELECT a FROM (SELECT a, b FROM r WHERE b < 10) tt JOIN s ON a = c"
        )
        join = statement.from_sources[0]
        assert isinstance(join, JoinSource)
        assert isinstance(join.left, SubquerySource)
        assert join.left.alias == "tt"

    def test_between_and_in(self):
        statement = parse_select(
            "SELECT a FROM r WHERE a BETWEEN 1 AND 5 AND b IN (1, 2, 3)"
        )
        where = statement.where
        assert isinstance(where, LogicalOp)
        assert isinstance(where.operands[0], Between)

    def test_distinct(self):
        assert parse_select("SELECT DISTINCT a FROM r").distinct

    def test_alias_without_as(self):
        statement = parse_select("SELECT a aa FROM r rr")
        assert statement.select_items[0].alias == "aa"
        assert statement.from_sources[0].alias == "rr"

    def test_count_star(self):
        statement = parse_select("SELECT count(*) AS n FROM r")
        call = statement.select_items[0].expression
        assert isinstance(call, FunctionCall)
        assert call.star

    def test_malformed_queries_raise(self):
        for sql in [
            "SELECT FROM r",
            "SELECT a r",
            "SELECT a FROM r WHERE",
            "SELECT a FROM r GROUP a",
            "SELECT a FROM r LIMIT x",
            "FROM r SELECT a",
        ]:
            with pytest.raises(ParseError):
                parse_select(sql)

    def test_trailing_garbage_raises(self):
        with pytest.raises(ParseError):
            parse_select("SELECT a FROM r extra tokens here")

    def test_semicolon_is_tolerated(self):
        assert isinstance(parse_select("SELECT a FROM r;"), SelectStatement)


class TestParseUpdates:
    def test_insert_with_columns(self):
        statement = parse_statement(
            "INSERT INTO sales (sid, brand, price) VALUES (8, 'HP', 1299), (9, 'HP', 99)"
        )
        assert isinstance(statement, InsertStatement)
        assert statement.columns == ["sid", "brand", "price"]
        assert statement.rows == [(8, "HP", 1299), (9, "HP", 99)]

    def test_insert_without_columns_and_negative_values(self):
        statement = parse_statement("INSERT INTO t VALUES (1, -2.5, NULL)")
        assert statement.rows == [(1, -2.5, None)]

    def test_delete_with_where(self):
        statement = parse_statement("DELETE FROM sales WHERE price > 1000")
        assert isinstance(statement, DeleteStatement)
        assert isinstance(statement.where, Comparison)

    def test_delete_without_where(self):
        statement = parse_statement("DELETE FROM sales")
        assert statement.where is None

    def test_unknown_statement_raises(self):
        with pytest.raises(ParseError):
            parse_statement("UPDATE t SET a = 1")
