"""Tests for persisting and restoring incremental maintenance state.

The paper's middleware can persist operator state in the backend database and
resume incremental maintenance from it after a restart or state eviction
(Sec. 2).  These tests verify that a round trip through the persisted
representation preserves maintenance correctness: a restored engine continues
to produce sketches identical to those of an engine that never left memory.
"""

import json
import random

import pytest

from repro.core.errors import StateError
from repro.imp.engine import IMPConfig, IncrementalEngine
from repro.imp.maintenance import IncrementalMaintainer
from repro.imp.persistence import (
    STATE_TABLE,
    StatePersistence,
    dump_engine_state,
    load_engine_state,
)
from repro.sketch.capture import capture_sketch
from repro.sketch.selection import build_database_partition
from repro.storage.database import Database
from repro.workloads.queries import q_groups, q_joinsel, q_topk
from repro.workloads.synthetic import load_join_helper, load_synthetic


@pytest.fixture()
def loaded_db():
    database = Database()
    table = load_synthetic(database, num_rows=1200, num_groups=60, seed=21)
    load_join_helper(database, num_rows=300, join_domain=60, seed=22)
    return database, table


QUERIES = [
    q_groups(threshold=900),
    q_joinsel(filter_threshold=2000, having_threshold=2000),
    q_topk(k=5),
    "SELECT DISTINCT a FROM r WHERE b < 600",
    "SELECT a, min(b) AS lo, max(c) AS hi FROM r GROUP BY a HAVING max(c) > 100",
]


class TestEngineStateRoundTrip:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_restored_engine_matches_live_engine(self, loaded_db, sql):
        database, table = loaded_db
        plan = database.plan(sql)
        partition = build_database_partition(database, plan, 16)
        live = IncrementalEngine(plan, partition, database, IMPConfig(topk_buffer=50))
        live.initialize()
        payload = dump_engine_state(live)

        restored = IncrementalEngine(plan, partition, database, IMPConfig(topk_buffer=50))
        load_engine_state(restored, payload)
        assert restored.is_initialized
        assert set(restored.current_sketch().fragment_ids()) == set(
            live.current_sketch().fragment_ids()
        )

        # Both engines must evolve identically under the same delta.
        version = database.version
        deletes = table.pick_deletes(8)
        inserts = table.make_inserts(15)
        database.delete_rows("r", deletes)
        database.insert("r", inserts)
        delta = database.database_delta_since(plan.referenced_tables(), version)
        live_outcome = live.maintain(delta)
        restored_outcome = restored.maintain(delta)
        assert live_outcome.sketch_delta.added == restored_outcome.sketch_delta.added
        assert live_outcome.sketch_delta.removed == restored_outcome.sketch_delta.removed

        accurate = capture_sketch(plan, partition, database)
        maintained = restored.current_sketch()
        assert set(maintained.fragment_ids()) >= set(accurate.fragment_ids())

    def test_dump_requires_initialization(self, loaded_db):
        database, _table = loaded_db
        plan = database.plan(q_groups())
        partition = build_database_partition(database, plan, 8)
        engine = IncrementalEngine(plan, partition, database)
        with pytest.raises(StateError):
            dump_engine_state(engine)

    def test_load_rejects_mismatched_plans(self, loaded_db):
        database, _table = loaded_db
        plan_a = database.plan(q_groups())
        plan_b = database.plan(q_joinsel(filter_threshold=2000, having_threshold=2000))
        partition = build_database_partition(database, plan_a, 8)
        engine_a = IncrementalEngine(plan_a, partition, database)
        engine_a.initialize()
        payload = dump_engine_state(engine_a)
        partition_b = build_database_partition(database, plan_b, 8)
        engine_b = IncrementalEngine(plan_b, partition_b, database)
        with pytest.raises(StateError):
            load_engine_state(engine_b, payload)

    def test_payload_is_json_serialisable(self, loaded_db):
        import json

        database, _table = loaded_db
        plan = database.plan(QUERIES[4])
        partition = build_database_partition(database, plan, 8)
        engine = IncrementalEngine(plan, partition, database)
        engine.initialize()
        payload = dump_engine_state(engine)
        restored_payload = json.loads(json.dumps(payload))
        fresh = IncrementalEngine(plan, partition, database)
        load_engine_state(fresh, restored_payload)
        assert set(fresh.current_sketch().fragment_ids()) == set(
            engine.current_sketch().fragment_ids()
        )


class TestBackendPersistence:
    def test_save_and_restore_maintainer(self, loaded_db):
        database, table = loaded_db
        sql = q_groups(threshold=900)
        plan = database.plan(sql)
        partition = build_database_partition(database, plan, 16)
        maintainer = IncrementalMaintainer(database, plan, partition)
        maintainer.capture()

        persistence = StatePersistence(database)
        persistence.save_maintainer("q_groups", sql, maintainer)
        assert database.has_table(STATE_TABLE)
        assert persistence.saved_keys() == ["q_groups"]

        # Simulate a restart: updates land while no maintainer is in memory.
        deletes = table.pick_deletes(10)
        database.delete_rows("r", deletes)
        database.insert("r", table.make_inserts(20))

        restored_sql, restored = persistence.load_maintainer("q_groups")
        assert restored_sql == sql
        assert restored.is_captured
        assert restored.is_stale()
        result = restored.maintain()
        accurate = capture_sketch(plan, partition, database)
        assert set(result.sketch.fragment_ids()) >= set(accurate.fragment_ids())
        assert not result.recaptured

    def test_save_overwrites_previous_version(self, loaded_db):
        database, table = loaded_db
        sql = q_groups(threshold=900)
        plan = database.plan(sql)
        partition = build_database_partition(database, plan, 16)
        maintainer = IncrementalMaintainer(database, plan, partition)
        maintainer.capture()
        persistence = StatePersistence(database)
        persistence.save_maintainer("entry", sql, maintainer)
        database.insert("r", table.make_inserts(5))
        maintainer.maintain()
        persistence.save_maintainer("entry", sql, maintainer)
        assert len(persistence.saved_keys()) == 1
        _sql, restored = persistence.load_maintainer("entry")
        assert restored.valid_at_version == maintainer.valid_at_version

    def test_restored_join_query_skips_bloom_but_stays_correct(self, loaded_db):
        database, table = loaded_db
        sql = q_joinsel(filter_threshold=2000, having_threshold=2000)
        plan = database.plan(sql)
        partition = build_database_partition(database, plan, 16)
        maintainer = IncrementalMaintainer(database, plan, partition)
        maintainer.capture()
        persistence = StatePersistence(database)
        persistence.save_maintainer("join", sql, maintainer)

        database.insert("r", table.make_inserts(15))
        _sql, restored = persistence.load_maintainer("join")
        result = restored.maintain()
        accurate = capture_sketch(plan, partition, database)
        assert set(result.sketch.fragment_ids()) >= set(accurate.fragment_ids())

    def test_missing_key_and_forget(self, loaded_db):
        database, _table = loaded_db
        persistence = StatePersistence(database)
        with pytest.raises(StateError):
            persistence.load_maintainer("missing")
        persistence.forget("missing")  # no error

    def test_unsaved_maintainer_rejected(self, loaded_db):
        database, _table = loaded_db
        sql = q_groups()
        plan = database.plan(sql)
        partition = build_database_partition(database, plan, 8)
        maintainer = IncrementalMaintainer(database, plan, partition)
        persistence = StatePersistence(database)
        with pytest.raises(StateError):
            persistence.save_maintainer("x", sql, maintainer)


class TestCorruptPayloads:
    """A persisted row survives restarts and crashes; by the time it is read
    back nothing about its producer can be assumed.  Every corruption must
    surface as a StateError naming the key -- never a raw KeyError or
    JSONDecodeError -- and load_or_capture must degrade to a fresh capture."""

    def _overwrite(self, database, key, raw_payload):
        table = database.table(STATE_TABLE)
        existing = table.lookup_by_key(key)
        if existing is not None:
            database.delete_rows(STATE_TABLE, [existing])
        database.insert(STATE_TABLE, [(key, raw_payload)])

    @pytest.mark.parametrize(
        "raw",
        [
            "this is not json {",
            "[1, 2, 3]",  # JSON, but not an object
            "{}",  # object, but every field missing
            '{"sql": "SELECT a FROM r", "partition": "nope"}',  # wrong shapes
            '{"sql": "SELECT a FROM r", "partition": [], "config": {"bogus_knob": 1}}',
        ],
    )
    def test_corrupt_payload_raises_state_error_with_context(self, loaded_db, raw):
        database, _table = loaded_db
        persistence = StatePersistence(database)
        self._overwrite(database, "bad", raw)
        with pytest.raises(StateError, match="'bad'"):
            persistence.load_maintainer("bad")

    def test_wrong_operator_count_is_a_state_error(self, loaded_db):
        database, _table = loaded_db
        sql = q_groups(threshold=900)
        plan = database.plan(sql)
        partition = build_database_partition(database, plan, 16)
        maintainer = IncrementalMaintainer(database, plan, partition)
        maintainer.capture()
        persistence = StatePersistence(database)
        persistence.save_maintainer("trimmed", sql, maintainer)
        payload = json.loads(database.table(STATE_TABLE).lookup_by_key("trimmed")[1])
        payload["engine_state"]["operators"] = payload["engine_state"]["operators"][:-1]
        self._overwrite(database, "trimmed", json.dumps(payload))
        with pytest.raises(StateError, match="operator"):
            persistence.load_maintainer("trimmed")

    def test_load_or_capture_restores_a_good_entry(self, loaded_db):
        database, _table = loaded_db
        sql = q_groups(threshold=900)
        plan = database.plan(sql)
        partition = build_database_partition(database, plan, 16)
        maintainer = IncrementalMaintainer(database, plan, partition)
        maintainer.capture()
        persistence = StatePersistence(database)
        persistence.save_maintainer("good", sql, maintainer)

        def never_called():
            raise AssertionError("capture fallback must not run for a good entry")

        restored_sql, restored, was_restored = persistence.load_or_capture(
            "good", never_called
        )
        assert was_restored and restored_sql == sql
        assert restored.is_captured

    def test_load_or_capture_falls_back_and_forgets_a_bad_entry(self, loaded_db):
        database, _table = loaded_db
        sql = q_groups(threshold=900)
        plan = database.plan(sql)
        partition = build_database_partition(database, plan, 16)
        persistence = StatePersistence(database)
        self._overwrite(database, "bad", "{corrupt")

        def capture():
            maintainer = IncrementalMaintainer(database, plan, partition)
            maintainer.capture()
            return sql, maintainer

        restored_sql, restored, was_restored = persistence.load_or_capture(
            "bad", capture
        )
        assert not was_restored and restored_sql == sql
        assert restored.is_captured
        # The corrupt row was dropped, so the next save starts clean.
        assert persistence.saved_keys() == []
        persistence.save_maintainer("bad", sql, restored)
        assert persistence.load_maintainer("bad")[0] == sql


class TestEvictionWorkflow:
    def test_periodic_persist_evict_restore_cycle(self, loaded_db):
        """Simulates the paper's eviction scenario over several cycles."""
        database, table = loaded_db
        rng = random.Random(77)
        sql = q_groups(threshold=900)
        plan = database.plan(sql)
        partition = build_database_partition(database, plan, 16)
        maintainer = IncrementalMaintainer(database, plan, partition)
        maintainer.capture()
        persistence = StatePersistence(database)
        for cycle in range(3):
            persistence.save_maintainer("cycled", sql, maintainer)
            del maintainer  # evicted from memory
            deletes = table.pick_deletes(rng.randrange(3, 8))
            database.delete_rows("r", deletes)
            database.insert("r", table.make_inserts(rng.randrange(5, 15)))
            _sql, maintainer = persistence.load_maintainer("cycled")
            result = maintainer.maintain()
            accurate = capture_sketch(plan, partition, database)
            assert set(result.sketch.fragment_ids()) >= set(accurate.fragment_ids())
